package obs_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"gbpolar/internal/obs"
	"gbpolar/internal/sched"
)

// TestMetricsConcurrent hammers one registry from sched workers — the
// exact concurrency pattern of the instrumented runners — and checks the
// totals. Run under -race this pins down that Counter/Gauge/Histogram
// updates are data-race-free.
func TestMetricsConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	pool := sched.NewPool(4)
	defer pool.Close()

	const tasks = 64
	const perTask = 1000
	ctr := reg.Counter("test.ops")
	hist := reg.Histogram("test.batch")
	pool.Run(func(w *sched.Worker) {
		for i := 0; i < tasks; i++ {
			i := i
			w.Spawn(func(w *sched.Worker) {
				for j := 0; j < perTask; j++ {
					ctr.Inc()
					hist.Observe(int64(i + 1))
					// Handle resolution from workers must be safe too.
					reg.Counter("test.ops2").Add(2)
					reg.Gauge("test.level").Set(float64(w.ID()))
				}
			})
		}
	})

	if got := ctr.Value(); got != tasks*perTask {
		t.Fatalf("counter = %d, want %d", got, tasks*perTask)
	}
	if got := reg.Counter("test.ops2").Value(); got != 2*tasks*perTask {
		t.Fatalf("ops2 = %d, want %d", got, 2*tasks*perTask)
	}
	if got := hist.Count(); got != tasks*perTask {
		t.Fatalf("hist count = %d, want %d", got, tasks*perTask)
	}
	if got, want := hist.Max(), int64(tasks); got != want {
		t.Fatalf("hist max = %d, want %d", got, want)
	}
	lvl := reg.Gauge("test.level").Value()
	if lvl < 0 || lvl >= 4 {
		t.Fatalf("gauge = %g, want a worker id in [0,4)", lvl)
	}
}

// TestHistogramBuckets checks the power-of-two bucket edges.
func TestHistogramBuckets(t *testing.T) {
	var h obs.Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 100, -5} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 100 {
		t.Fatalf("max = %d", h.Max())
	}
	buckets := h.Snapshot()
	// Expected: le=0 (v≤0: 0 and -5), le=1 (1), le=3 (2,3), le=7 (4),
	// le=127 (100).
	want := map[int64]int64{0: 2, 1: 1, 3: 2, 7: 1, 127: 1}
	if len(buckets) != len(want) {
		t.Fatalf("buckets = %+v, want edges %v", buckets, want)
	}
	for _, b := range buckets {
		if want[b.Le] != b.N {
			t.Fatalf("bucket le=%d n=%d, want n=%d", b.Le, b.N, want[b.Le])
		}
	}
}

// TestMetricUpdatesAllocFree: hot-path updates must not allocate.
func TestMetricUpdatesAllocFree(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h")
	if n := testing.AllocsPerRun(100, func() {
		c.Add(3)
		g.Set(1.5)
		h.Observe(17)
	}); n != 0 {
		t.Fatalf("metric updates allocate %.1f per op, want 0", n)
	}
	// Nil handles (disabled observability) must also be free.
	var nc *obs.Counter
	var ng *obs.Gauge
	var nh *obs.Histogram
	if n := testing.AllocsPerRun(100, func() {
		nc.Add(3)
		ng.Set(1.5)
		nh.Observe(17)
	}); n != 0 {
		t.Fatalf("nil metric updates allocate %.1f per op, want 0", n)
	}
}

// TestRegistrySnapshotJSON round-trips the snapshot through JSON.
func TestRegistrySnapshotJSON(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("pairs.near").Add(123)
	reg.Gauge("imbalance").Set(1.07)
	reg.Histogram("batch.size").Observe(48)

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap obs.MetricsSnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["pairs.near"] != 123 {
		t.Fatalf("counters = %v", snap.Counters)
	}
	if snap.Gauges["imbalance"] != 1.07 {
		t.Fatalf("gauges = %v", snap.Gauges)
	}
	hs := snap.Histograms["batch.size"]
	if hs.Count != 1 || hs.Max != 48 {
		t.Fatalf("histogram = %+v", hs)
	}

	var tbl bytes.Buffer
	if err := reg.Fprint(&tbl); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(tbl.Bytes(), []byte("pairs.near")) {
		t.Fatalf("Fprint missing counter:\n%s", tbl.String())
	}
}

// TestNilRegistryInert: nil registry hands out nil (no-op) handles.
func TestNilRegistryInert(t *testing.T) {
	var reg *obs.Registry
	reg.Counter("x").Inc()
	reg.Gauge("y").Set(1)
	reg.Histogram("z").Observe(1)
	snap := reg.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatal("nil registry produced metrics")
	}
	var buf bytes.Buffer
	if err := reg.Fprint(&buf); err != nil || buf.Len() != 0 {
		t.Fatal("nil registry printed output")
	}
}
