package analyze

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Fprint renders the analysis as the `gbtrace report` breakdown: the
// per-phase wall/virtual table with imbalance factors, the dominant
// phase and straggler lines, collective wait attribution, the per-rank
// computing-vs-blocked decomposition, and recovery cost attribution.
func (a *Analysis) Fprint(w io.Writer) error {
	bw := bufio.NewWriter(w)

	fmt.Fprintf(bw, "timeline: %d events, %d ranks, %d phases, %d collective kinds\n",
		a.Events, len(a.Ranks), len(a.Phases), len(a.Collectives))
	axis := "wall"
	if a.HasVirt {
		axis = "virtual"
	}
	fmt.Fprintf(bw, "makespan: wall %.3f ms, virtual %.3f ms (authoritative axis: %s)\n",
		a.WallMakespanUS/1e3, a.VirtMakespanUS/1e3, axis)
	fmt.Fprintf(bw, "critical path (sum of per-phase slowest ranks): wall %.3f ms, virtual %.3f ms\n\n",
		a.WallCriticalUS/1e3, a.VirtCriticalUS/1e3)

	fmt.Fprintf(bw, "%-10s %6s %12s %12s %7s %12s %12s %7s %5s\n",
		"phase", "spans", "wall sum", "wall max", "w-imb", "virt sum", "virt max", "v-imb", "rank")
	fmt.Fprintf(bw, "%-10s %6s %12s %12s %7s %12s %12s %7s %5s\n",
		"", "", "(ms)", "(ms)", "", "(ms)", "(ms)", "", "")
	for _, ps := range a.Phases {
		name := ps.Name
		if ps.Truncated > 0 {
			name += "*"
		}
		fmt.Fprintf(bw, "%-10s %6d %12.3f %12.3f %7.3f %12.3f %12.3f %7.3f %5d\n",
			name, ps.Spans,
			ps.Wall.TotalUS/1e3, ps.Wall.MaxUS/1e3, ps.Wall.Imbalance,
			ps.Virt.TotalUS/1e3, ps.Virt.MaxUS/1e3, ps.Virt.Imbalance,
			a.axisOf(ps).MaxRank)
	}
	if a.DominantPhase != "" {
		fmt.Fprintf(bw, "\ndominant phase: %s — %.1f%% of the %s critical path\n",
			a.DominantPhase, 100*a.DominantShare, axis)
	}
	if len(a.Ranks) > 1 {
		fmt.Fprintf(bw, "straggler: rank %d at %.3fx the mean per-rank phase time\n",
			a.Straggler, a.StragglerShare)
	}

	if len(a.Collectives) > 0 {
		fmt.Fprintf(bw, "\n%-12s %6s %10s %12s %12s %6s %10s\n",
			"collective", "spans", "bytes", "wait (ms)", "xfer (ms)", "errs", "max waiter")
		for _, cs := range a.Collectives {
			fmt.Fprintf(bw, "%-12s %6d %10.0f %12.3f %12.3f %6d %10s\n",
				cs.Name, cs.Count, cs.Bytes, cs.WaitUS/1e3, cs.XferUS/1e3, cs.Errors,
				fmt.Sprintf("rank %d", cs.MaxWaitRank))
		}
	}

	if len(a.Ranks) > 1 {
		fmt.Fprintf(bw, "\n%-5s %14s %14s %14s %9s\n",
			"rank", "compute (ms)", "blocked (ms)", "collect. (ms)", "blocked%")
		for _, rs := range a.Ranks {
			compute := rs.PhaseVirtUS
			if !a.HasVirt {
				compute = rs.PhaseWallUS
			}
			busy := compute + rs.CollVirtUS
			pct := 0.0
			if busy > 0 {
				pct = 100 * rs.WaitUS / busy
			}
			fmt.Fprintf(bw, "%-5d %14.3f %14.3f %14.3f %9.1f\n",
				rs.Rank, compute/1e3, rs.WaitUS/1e3, rs.CollVirtUS/1e3, pct)
		}
	}

	rec := a.Recovery
	if rec.Crashes+rec.Drops+rec.Delays+rec.Detections+rec.RecomputedRows > 0 {
		fmt.Fprintf(bw, "\nfaults: %d crashes, %d drops, %d delays; %d detections (%.3f ms latency)\n",
			rec.Crashes, rec.Drops, rec.Delays, rec.Detections, rec.DetectionUS/1e3)
		fmt.Fprintf(bw, "recovery: %d rows recomputed costing %.3f ms virtual; total attributed %.3f ms\n",
			rec.RecomputedRows, rec.RecomputeSecs*1e3, rec.Seconds()*1e3)
	}
	hasTrunc := false
	for _, ps := range a.Phases {
		hasTrunc = hasTrunc || ps.Truncated > 0
	}
	if hasTrunc {
		fmt.Fprintf(bw, "\n* phase includes spans truncated at export (virtual duration unknown)\n")
	}
	return bw.Flush()
}

// WriteJSON emits the full analysis as indented JSON.
func (a *Analysis) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// Summary flattens the analysis into named scalar stats — the interface
// the regression gate and `gbtrace diff` compare. Durations are in
// milliseconds. Keys are stable across runs of the same workload.
func (a *Analysis) Summary() map[string]float64 {
	s := map[string]float64{
		"events":           float64(a.Events),
		"ranks":            float64(len(a.Ranks)),
		"makespan.wall_ms": a.WallMakespanUS / 1e3,
		"critical.wall_ms": a.WallCriticalUS / 1e3,
	}
	if a.HasVirt {
		s["makespan.virt_ms"] = a.VirtMakespanUS / 1e3
		s["critical.virt_ms"] = a.VirtCriticalUS / 1e3
	}
	for _, ps := range a.Phases {
		p := "phase." + ps.Name
		s[p+".wall_ms"] = ps.Wall.TotalUS / 1e3
		s[p+".wall_imbalance"] = ps.Wall.Imbalance
		if ps.HasVirt {
			s[p+".virt_ms"] = ps.Virt.TotalUS / 1e3
			s[p+".virt_max_ms"] = ps.Virt.MaxUS / 1e3
			s[p+".virt_imbalance"] = ps.Virt.Imbalance
		}
	}
	for _, cs := range a.Collectives {
		c := "collective." + cs.Name
		s[c+".count"] = float64(cs.Count)
		s[c+".wait_ms"] = cs.WaitUS / 1e3
		s[c+".xfer_ms"] = cs.XferUS / 1e3
	}
	if rec := a.Recovery; rec.Crashes+rec.RecomputedRows > 0 {
		s["recovery.rows"] = float64(rec.RecomputedRows)
		s["recovery.ms"] = rec.Seconds() * 1e3
		s["faults.crashes"] = float64(rec.Crashes)
		s["faults.detections"] = float64(rec.Detections)
	}
	return s
}

// SortedKeys returns the summary's keys in lexical order.
func SortedKeys(s map[string]float64) []string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
