package analyze

import (
	"bufio"
	"cmp"
	"fmt"
	"io"
	"math"
	"slices"
)

// DiffRow is one stat's run-to-run comparison.
type DiffRow struct {
	Stat string  `json:"stat"`
	A    float64 `json:"a"`
	B    float64 `json:"b"`
	// DeltaPct is 100·(B−A)/A; ±Inf when only A is zero.
	DeltaPct float64 `json:"delta_pct"`
}

// Diff compares two analyses stat-by-stat over the union of their
// summary keys, sorted by descending |Δ%| (at equal magnitude,
// regressions before improvements, then lexically), so the biggest
// run-to-run movement tops the `gbtrace diff` output.
func Diff(a, b *Analysis) []DiffRow {
	return DiffSummaries(a.Summary(), b.Summary())
}

// DiffSummaries is Diff on pre-flattened summaries.
func DiffSummaries(sa, sb map[string]float64) []DiffRow {
	keys := map[string]bool{}
	for k := range sa {
		keys[k] = true
	}
	for k := range sb {
		keys[k] = true
	}
	rows := make([]DiffRow, 0, len(keys))
	for k := range keys {
		row := DiffRow{Stat: k, A: sa[k], B: sb[k]}
		switch {
		case row.A == row.B:
			row.DeltaPct = 0
		case row.A == 0:
			row.DeltaPct = math.Inf(sign(row.B - row.A))
		default:
			row.DeltaPct = 100 * (row.B - row.A) / row.A
		}
		rows = append(rows, row)
	}
	slices.SortFunc(rows, func(a, b DiffRow) int {
		if c := cmp.Compare(math.Abs(b.DeltaPct), math.Abs(a.DeltaPct)); c != 0 {
			return c
		}
		if c := cmp.Compare(b.DeltaPct, a.DeltaPct); c != 0 {
			return c
		}
		return cmp.Compare(a.Stat, b.Stat)
	})
	return rows
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// FprintDiff renders diff rows as an aligned table. When changedOnly is
// set, rows with zero delta are suppressed (a count of them is printed
// instead).
func FprintDiff(w io.Writer, rows []DiffRow, changedOnly bool) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%-34s %14s %14s %10s\n", "stat", "a", "b", "delta")
	unchanged := 0
	for _, r := range rows {
		if changedOnly && r.DeltaPct == 0 {
			unchanged++
			continue
		}
		delta := fmt.Sprintf("%+.2f%%", r.DeltaPct)
		if math.IsInf(r.DeltaPct, 0) {
			delta = "new"
		}
		fmt.Fprintf(bw, "%-34s %14.4f %14.4f %10s\n", r.Stat, r.A, r.B, delta)
	}
	if unchanged > 0 {
		fmt.Fprintf(bw, "(%d stats unchanged)\n", unchanged)
	}
	return bw.Flush()
}
