// Package analyze turns a raw obs.Trace timeline into the quantities the
// paper's evaluation argues with: per-rank/per-phase cost attribution on
// both the wall and virtual clock axes, the cross-rank critical path,
// per-phase load-imbalance factors (max/mean — the scalability lens of
// Figure 5's discussion), collective wait-time attribution (time blocked
// in a rendezvous vs. computing), straggler identification, and
// fault-recovery cost attribution reconcilable against the cluster
// report's Faults section.
//
// The package consumes only []obs.Event — in-memory from a live Trace or
// re-parsed from JSONL via obs.ReadJSONL — so cmd/gbtrace can analyze a
// run on a different machine than the one that produced it. See
// DESIGN.md §9 for the definitions.
package analyze

import (
	"cmp"
	"math"
	"slices"

	"gbpolar/internal/obs"
)

// AxisStat aggregates one phase's per-rank durations on one clock axis
// (microseconds).
type AxisStat struct {
	// TotalUS is the sum of span durations over all ranks — the raw
	// span sum the breakdown must reconcile with.
	TotalUS float64 `json:"total_us"`
	// MaxUS is the largest per-rank total; MaxRank holds it.
	MaxUS   float64 `json:"max_us"`
	MaxRank int     `json:"max_rank"`
	// MeanUS averages over participating ranks.
	MeanUS float64 `json:"mean_us"`
	// Imbalance is MaxUS/MeanUS — the load-imbalance factor λ ≥ 1; a
	// perfectly balanced phase has λ = 1 and a phase where one rank does
	// everything has λ = P.
	Imbalance float64 `json:"imbalance"`
}

func (a *AxisStat) finalize(perRank map[int]float64) {
	first := true
	for r, us := range perRank {
		a.TotalUS += us
		if first || us > a.MaxUS {
			a.MaxUS, a.MaxRank = us, r
			first = false
		}
	}
	if n := len(perRank); n > 0 {
		a.MeanUS = a.TotalUS / float64(n)
	}
	if a.MeanUS > 0 {
		a.Imbalance = a.MaxUS / a.MeanUS
	}
}

// PhaseStat aggregates the spans of one phase (category "phase") across
// ranks.
type PhaseStat struct {
	Name string `json:"name"`
	// Spans counts the contributing spans; under recovery a rank may
	// re-enter a phase, so Spans can exceed the rank count.
	Spans int `json:"spans"`
	// Truncated counts spans still open at export time (marked
	// truncated by the trace); their wall time is included, their
	// virtual time is unknown and excluded.
	Truncated int `json:"truncated,omitempty"`
	// PerRankWallUS / PerRankVirtUS are the per-rank duration totals
	// this phase's AxisStats summarize.
	PerRankWallUS map[int]float64 `json:"per_rank_wall_us"`
	PerRankVirtUS map[int]float64 `json:"per_rank_virt_us,omitempty"`
	Wall          AxisStat        `json:"wall"`
	Virt          AxisStat        `json:"virt"`
	// HasVirt reports whether any span carried a virtual clock.
	HasVirt bool `json:"has_virt"`
}

// CollectiveStat aggregates the spans of one collective kind.
type CollectiveStat struct {
	Name  string  `json:"name"`
	Count int     `json:"count"`
	Bytes float64 `json:"bytes"`
	// WallUS / VirtUS are total span durations across ranks.
	WallUS float64 `json:"wall_us"`
	VirtUS float64 `json:"virt_us"`
	// WaitUS is the virtual time ranks spent blocked in the rendezvous
	// waiting for the last arrival; XferUS the cost-model charge for the
	// data movement itself. Wait + Xfer = Virt for fault-free rounds;
	// failed rounds (Errors) contribute duration but no split.
	WaitUS float64 `json:"wait_us"`
	XferUS float64 `json:"xfer_us"`
	Errors int     `json:"errors,omitempty"`
	// MaxWaitRank idled longest — it runs ahead and waits on the
	// stragglers, so a large per-rank wait marks a FAST rank.
	MaxWaitUS     float64         `json:"max_wait_us"`
	MaxWaitRank   int             `json:"max_wait_rank"`
	PerRankWaitUS map[int]float64 `json:"per_rank_wait_us,omitempty"`
}

// Recovery aggregates the fault and recovery events of the timeline.
// DetectionUS/1e6 + RecomputeSecs reconciles with the cluster
// FaultReport's RecoverySeconds; RecomputedRows with its RecomputedRows.
type Recovery struct {
	Crashes        int     `json:"crashes"`
	Drops          int     `json:"drops"`
	Delays         int     `json:"delays"`
	Detections     int     `json:"detections"`
	DetectionUS    float64 `json:"detection_us"`
	RecomputedRows int     `json:"recomputed_rows"`
	RecomputeSecs  float64 `json:"recompute_secs"`
}

// Seconds returns the total attributed recovery cost in seconds.
func (r Recovery) Seconds() float64 { return r.DetectionUS/1e6 + r.RecomputeSecs }

// RankStat is one rank's computing-vs-blocked decomposition.
type RankStat struct {
	Rank int `json:"rank"`
	// PhaseWallUS / PhaseVirtUS is time spent computing in phase spans.
	PhaseWallUS float64 `json:"phase_wall_us"`
	PhaseVirtUS float64 `json:"phase_virt_us"`
	// WaitUS is virtual time blocked in collective rendezvous;
	// CollVirtUS the full collective time including the transfer charge.
	WaitUS     float64 `json:"wait_us"`
	CollVirtUS float64 `json:"coll_virt_us"`
}

// Analysis is the queryable model of one run's timeline.
type Analysis struct {
	Events      int               `json:"events"`
	Ranks       []RankStat        `json:"ranks"`
	Phases      []*PhaseStat      `json:"phases"`
	Collectives []*CollectiveStat `json:"collectives"`
	Recovery    Recovery          `json:"recovery"`

	// Makespan is max end − min start over the events of each axis.
	WallMakespanUS float64 `json:"wall_makespan_us"`
	VirtMakespanUS float64 `json:"virt_makespan_us"`
	// Critical path: Σ over phases of the slowest rank's phase total —
	// the cross-rank lower bound on the makespan given the collective
	// barriers between phases. The virtual-axis gap between critical
	// path + collective costs and the makespan is scheduling slack.
	WallCriticalUS float64 `json:"wall_critical_us"`
	VirtCriticalUS float64 `json:"virt_critical_us"`
	// DominantPhase contributes the largest share of the authoritative
	// critical path; DominantShare is that fraction (0..1).
	DominantPhase string  `json:"dominant_phase"`
	DominantShare float64 `json:"dominant_share"`
	// Straggler is the rank with the largest authoritative phase total;
	// StragglerShare is its total over the mean (≥ 1).
	Straggler      int     `json:"straggler"`
	StragglerShare float64 `json:"straggler_share"`
	// HasVirt selects the authoritative axis: virtual when any phase
	// span carried one (modeled runs), wall otherwise.
	HasVirt bool `json:"has_virt"`
}

// FromTrace analyzes a live trace's events.
func FromTrace(t *obs.Trace) *Analysis { return Analyze(t.Events()) }

// Analyze builds the timeline model from raw events (as returned by
// Trace.Events or re-read via obs.ReadJSONL).
func Analyze(events []obs.Event) *Analysis {
	a := &Analysis{Events: len(events)}
	phases := map[string]*PhaseStat{}
	colls := map[string]*CollectiveStat{}
	ranks := map[int]*RankStat{}
	rank := func(r int) *RankStat {
		rs := ranks[r]
		if rs == nil {
			rs = &RankStat{Rank: r}
			ranks[r] = rs
		}
		return rs
	}

	wallMin, wallMax := math.Inf(1), math.Inf(-1)
	virtMin, virtMax := math.Inf(1), math.Inf(-1)
	for i := range events {
		ev := &events[i]
		if ev.WallUS < wallMin {
			wallMin = ev.WallUS
		}
		if e := ev.WallUS + ev.WallDurUS; e > wallMax {
			wallMax = e
		}
		if ev.HasVirt {
			if ev.VirtUS < virtMin {
				virtMin = ev.VirtUS
			}
			if e := ev.VirtUS + ev.VirtDurUS; e > virtMax {
				virtMax = e
			}
		}

		switch {
		case ev.Ph == "X" && ev.Cat == "phase":
			ps := phases[ev.Name]
			if ps == nil {
				ps = &PhaseStat{Name: ev.Name, PerRankWallUS: map[int]float64{}, PerRankVirtUS: map[int]float64{}}
				phases[ev.Name] = ps
				a.Phases = append(a.Phases, ps)
			}
			ps.Spans++
			ps.PerRankWallUS[ev.Rank] += ev.WallDurUS
			rank(ev.Rank).PhaseWallUS += ev.WallDurUS
			if ev.Args["truncated"] != 0 {
				ps.Truncated++
			} else if ev.HasVirt {
				ps.HasVirt = true
				ps.PerRankVirtUS[ev.Rank] += ev.VirtDurUS
				rank(ev.Rank).PhaseVirtUS += ev.VirtDurUS
			}

		case ev.Ph == "X" && ev.Cat == "collective":
			cs := colls[ev.Name]
			if cs == nil {
				cs = &CollectiveStat{Name: ev.Name, PerRankWaitUS: map[int]float64{}}
				colls[ev.Name] = cs
				a.Collectives = append(a.Collectives, cs)
			}
			cs.Count++
			cs.Bytes += ev.Args["bytes"]
			cs.WallUS += ev.WallDurUS
			cs.VirtUS += ev.VirtDurUS
			cs.WaitUS += ev.Args["wait_us"]
			cs.XferUS += ev.Args["xfer_us"]
			cs.PerRankWaitUS[ev.Rank] += ev.Args["wait_us"]
			if ev.Args["error"] != 0 {
				cs.Errors++
			}
			rank(ev.Rank).WaitUS += ev.Args["wait_us"]
			rank(ev.Rank).CollVirtUS += ev.VirtDurUS

		case ev.Ph == "i":
			switch ev.Name {
			case "rank.crash":
				a.Recovery.Crashes++
			case "msg.drop":
				a.Recovery.Drops++
			case "msg.delay":
				a.Recovery.Delays++
			case "death.detect":
				a.Recovery.Detections++
				a.Recovery.DetectionUS += ev.Args["latency_us"]
			case "rows.recomputed":
				a.Recovery.RecomputedRows += int(ev.Args["rows"])
				a.Recovery.RecomputeSecs += ev.Args["virt_s"]
			}
		}
	}

	if wallMax > wallMin {
		a.WallMakespanUS = wallMax - wallMin
	}
	if virtMax > virtMin {
		a.VirtMakespanUS = virtMax - virtMin
	}

	for _, ps := range a.Phases {
		ps.Wall.finalize(ps.PerRankWallUS)
		ps.Virt.finalize(ps.PerRankVirtUS)
		if ps.HasVirt {
			a.HasVirt = true
		}
		a.WallCriticalUS += ps.Wall.MaxUS
		a.VirtCriticalUS += ps.Virt.MaxUS
	}
	for _, cs := range a.Collectives {
		first := true
		for r, us := range cs.PerRankWaitUS {
			if first || us > cs.MaxWaitUS {
				cs.MaxWaitUS, cs.MaxWaitRank = us, r
				first = false
			}
		}
	}

	for _, rs := range ranks {
		a.Ranks = append(a.Ranks, *rs)
	}
	slices.SortFunc(a.Ranks, func(x, y RankStat) int { return cmp.Compare(x.Rank, y.Rank) })

	a.findDominant()
	a.findStraggler()
	return a
}

// axisOf selects a phase's authoritative axis stat.
func (a *Analysis) axisOf(ps *PhaseStat) *AxisStat {
	if a.HasVirt && ps.HasVirt {
		return &ps.Virt
	}
	return &ps.Wall
}

// Critical returns the authoritative critical path in microseconds.
func (a *Analysis) Critical() float64 {
	if a.HasVirt {
		return a.VirtCriticalUS
	}
	return a.WallCriticalUS
}

func (a *Analysis) findDominant() {
	crit := a.Critical()
	var best float64
	for _, ps := range a.Phases {
		if m := a.axisOf(ps).MaxUS; m > best {
			best = m
			a.DominantPhase = ps.Name
		}
	}
	if crit > 0 {
		a.DominantShare = best / crit
	}
}

func (a *Analysis) findStraggler() {
	if len(a.Ranks) == 0 {
		return
	}
	var max, sum float64
	for _, rs := range a.Ranks {
		t := rs.PhaseVirtUS
		if !a.HasVirt {
			t = rs.PhaseWallUS
		}
		sum += t
		if t >= max {
			max = t
			a.Straggler = rs.Rank
		}
	}
	if mean := sum / float64(len(a.Ranks)); mean > 0 {
		a.StragglerShare = max / mean
	}
}

// Phase returns the named phase's stats, or nil.
func (a *Analysis) Phase(name string) *PhaseStat {
	for _, ps := range a.Phases {
		if ps.Name == name {
			return ps
		}
	}
	return nil
}

// Collective returns the named collective's stats, or nil.
func (a *Analysis) Collective(name string) *CollectiveStat {
	for _, cs := range a.Collectives {
		if cs.Name == name {
			return cs
		}
	}
	return nil
}
