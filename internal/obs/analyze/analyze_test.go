package analyze

import (
	"math"
	"strings"
	"testing"

	"gbpolar/internal/obs"
)

// span builds a synthetic phase/collective event on both clock axes.
func span(name, cat string, rank int, wallUS, wallDur, virtUS, virtDur float64, args map[string]float64) obs.Event {
	return obs.Event{
		Name: name, Cat: cat, Ph: "X", Rank: rank,
		WallUS: wallUS, WallDurUS: wallDur,
		VirtUS: virtUS, VirtDurUS: virtDur, HasVirt: true,
		Args: args,
	}
}

func instant(name string, rank int, args map[string]float64) obs.Event {
	return obs.Event{Name: name, Cat: "fault", Ph: "i", Rank: rank, Args: args}
}

// A small fixed timeline: two phases across two ranks plus one
// collective round and a recovery episode.
//
//	push: rank0 virt 100, rank1 virt 300 → max 300, mean 200, λ=1.5
//	epol: rank0 virt 400, rank1 virt 400 → λ=1
//	allreduce: rank0 waits 50, rank1 waits 0, both xfer 10
func fixedEvents() []obs.Event {
	return []obs.Event{
		span("push", "phase", 0, 0, 120, 0, 100, nil),
		span("push", "phase", 1, 0, 310, 0, 300, nil),
		span("allreduce", "collective", 0, 120, 70, 100, 260, map[string]float64{
			"bytes": 64, "wait_us": 250, "xfer_us": 10,
		}),
		span("allreduce", "collective", 1, 310, 30, 300, 60, map[string]float64{
			"bytes": 64, "wait_us": 50, "xfer_us": 10,
		}),
		span("epol", "phase", 0, 200, 410, 360, 400, nil),
		span("epol", "phase", 1, 350, 390, 360, 400, nil),
		instant("rank.crash", 1, nil),
		instant("death.detect", 0, map[string]float64{"latency_us": 2000}),
		instant("rows.recomputed", 0, map[string]float64{"rows": 42, "virt_s": 0.005}),
	}
}

func TestAnalyzePhaseImbalance(t *testing.T) {
	a := Analyze(fixedEvents())
	if !a.HasVirt {
		t.Fatal("expected virtual axis")
	}

	push := a.Phase("push")
	if push == nil {
		t.Fatal("no push phase")
	}
	if push.Spans != 2 {
		t.Fatalf("push spans = %d, want 2", push.Spans)
	}
	if got := push.Virt.TotalUS; got != 400 {
		t.Fatalf("push virt total = %v, want 400", got)
	}
	if got := push.Virt.MaxUS; got != 300 {
		t.Fatalf("push virt max = %v, want 300", got)
	}
	if push.Virt.MaxRank != 1 {
		t.Fatalf("push virt max rank = %d, want 1", push.Virt.MaxRank)
	}
	if got := push.Virt.Imbalance; math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("push imbalance = %v, want 1.5", got)
	}

	epol := a.Phase("epol")
	if got := epol.Virt.Imbalance; math.Abs(got-1) > 1e-12 {
		t.Fatalf("epol imbalance = %v, want 1", got)
	}

	// Critical path = Σ per-phase maxima = 300 + 400.
	if got := a.VirtCriticalUS; got != 700 {
		t.Fatalf("virt critical = %v, want 700", got)
	}
	if got := a.Critical(); got != 700 {
		t.Fatalf("Critical() = %v, want 700", got)
	}
	// Wall: push max 310, epol max 410.
	if got := a.WallCriticalUS; got != 720 {
		t.Fatalf("wall critical = %v, want 720", got)
	}
	// epol's 400 is the largest phase maximum.
	if a.DominantPhase != "epol" {
		t.Fatalf("dominant phase = %q, want epol", a.DominantPhase)
	}
	if got := a.DominantShare; math.Abs(got-400.0/700.0) > 1e-12 {
		t.Fatalf("dominant share = %v, want 4/7", got)
	}
	// Rank 1 did 300+400 = 700 vs rank 0's 500; mean 600.
	if a.Straggler != 1 {
		t.Fatalf("straggler = %d, want 1", a.Straggler)
	}
	if got := a.StragglerShare; math.Abs(got-700.0/600.0) > 1e-12 {
		t.Fatalf("straggler share = %v, want 7/6", got)
	}
}

func TestAnalyzeMakespan(t *testing.T) {
	a := Analyze(fixedEvents())
	// Wall: min start 0, max end = 350+390 = 740 (rank 1's epol).
	if got := a.WallMakespanUS; got != 740 {
		t.Fatalf("wall makespan = %v, want 740", got)
	}
	// Virt: min 0, max end = 360+400 = 760.
	if got := a.VirtMakespanUS; got != 760 {
		t.Fatalf("virt makespan = %v, want 760", got)
	}
}

func TestAnalyzeCollectiveWait(t *testing.T) {
	a := Analyze(fixedEvents())
	cs := a.Collective("allreduce")
	if cs == nil {
		t.Fatal("no allreduce stats")
	}
	if cs.Count != 2 || cs.Bytes != 128 {
		t.Fatalf("count=%d bytes=%v, want 2/128", cs.Count, cs.Bytes)
	}
	if cs.WaitUS != 300 || cs.XferUS != 20 {
		t.Fatalf("wait=%v xfer=%v, want 300/20", cs.WaitUS, cs.XferUS)
	}
	// Rank 0 idled longest: it is the FAST rank waiting on rank 1.
	if cs.MaxWaitRank != 0 || cs.MaxWaitUS != 250 {
		t.Fatalf("max wait rank=%d us=%v, want rank 0 / 250", cs.MaxWaitRank, cs.MaxWaitUS)
	}
	// Per-rank rollup.
	if len(a.Ranks) != 2 {
		t.Fatalf("ranks = %d, want 2", len(a.Ranks))
	}
	r0 := a.Ranks[0]
	if r0.Rank != 0 || r0.WaitUS != 250 || r0.CollVirtUS != 260 {
		t.Fatalf("rank0 = %+v", r0)
	}
	if r0.PhaseVirtUS != 500 {
		t.Fatalf("rank0 phase virt = %v, want 500", r0.PhaseVirtUS)
	}
}

func TestAnalyzeRecovery(t *testing.T) {
	a := Analyze(fixedEvents())
	rec := a.Recovery
	if rec.Crashes != 1 || rec.Detections != 1 {
		t.Fatalf("crashes=%d detections=%d, want 1/1", rec.Crashes, rec.Detections)
	}
	if rec.DetectionUS != 2000 {
		t.Fatalf("detection us = %v, want 2000", rec.DetectionUS)
	}
	if rec.RecomputedRows != 42 {
		t.Fatalf("rows = %d, want 42", rec.RecomputedRows)
	}
	if got, want := rec.Seconds(), 0.002+0.005; math.Abs(got-want) > 1e-12 {
		t.Fatalf("recovery seconds = %v, want %v", got, want)
	}
}

func TestAnalyzeTruncatedSpans(t *testing.T) {
	events := []obs.Event{
		span("push", "phase", 0, 0, 100, 0, 100, nil),
		// Truncated span: wall counts, virtual axis must be excluded.
		{
			Name: "epol", Cat: "phase", Ph: "X", Rank: 0,
			WallUS: 100, WallDurUS: 50, VirtUS: 100, HasVirt: true,
			Args: map[string]float64{"truncated": 1},
		},
	}
	a := Analyze(events)
	epol := a.Phase("epol")
	if epol == nil || epol.Truncated != 1 {
		t.Fatalf("truncated count wrong: %+v", epol)
	}
	if epol.Wall.TotalUS != 50 {
		t.Fatalf("truncated wall total = %v, want 50", epol.Wall.TotalUS)
	}
	if epol.Virt.TotalUS != 0 || epol.HasVirt {
		t.Fatalf("truncated span leaked into virtual axis: %+v", epol.Virt)
	}
}

func TestAnalyzeWallOnly(t *testing.T) {
	events := []obs.Event{
		{Name: "born", Cat: "phase", Ph: "X", Rank: 0, WallUS: 0, WallDurUS: 100},
		{Name: "born", Cat: "phase", Ph: "X", Rank: 1, WallUS: 0, WallDurUS: 300},
	}
	a := Analyze(events)
	if a.HasVirt {
		t.Fatal("wall-only trace reported a virtual axis")
	}
	if got := a.Phase("born").Wall.Imbalance; math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("wall imbalance = %v, want 1.5", got)
	}
	if a.Straggler != 1 {
		t.Fatalf("straggler = %d, want 1", a.Straggler)
	}
	s := a.Summary()
	if _, ok := s["makespan.virt_ms"]; ok {
		t.Fatal("wall-only summary carries virtual keys")
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil)
	if a.Events != 0 || len(a.Phases) != 0 || a.WallMakespanUS != 0 {
		t.Fatalf("empty analysis not zero: %+v", a)
	}
	var buf strings.Builder
	if err := a.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 events") {
		t.Fatalf("empty report = %q", buf.String())
	}
}

func TestSummaryKeys(t *testing.T) {
	a := Analyze(fixedEvents())
	s := a.Summary()
	for _, k := range []string{
		"events", "ranks",
		"makespan.wall_ms", "makespan.virt_ms",
		"critical.wall_ms", "critical.virt_ms",
		"phase.push.virt_ms", "phase.push.virt_imbalance",
		"phase.epol.wall_ms", "phase.epol.wall_imbalance",
		"collective.allreduce.count", "collective.allreduce.wait_ms",
		"recovery.rows", "recovery.ms", "faults.crashes",
	} {
		if _, ok := s[k]; !ok {
			t.Errorf("summary missing %q", k)
		}
	}
	if got := s["phase.push.virt_imbalance"]; math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("summary imbalance = %v, want 1.5", got)
	}
	if got := s["recovery.rows"]; got != 42 {
		t.Fatalf("summary recovery.rows = %v, want 42", got)
	}
	keys := SortedKeys(s)
	if len(keys) != len(s) {
		t.Fatalf("SortedKeys len = %d, want %d", len(keys), len(s))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys not sorted: %q >= %q", keys[i-1], keys[i])
		}
	}
}

func TestFprintReport(t *testing.T) {
	a := Analyze(fixedEvents())
	var buf strings.Builder
	if err := a.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"dominant phase: epol",
		"straggler: rank 1 at 1.167x",
		"allreduce",
		"1 crashes",
		"42 rows recomputed",
		"authoritative axis: virtual",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q in:\n%s", want, out)
		}
	}
}

func TestDiff(t *testing.T) {
	sa := map[string]float64{"phase.push.virt_ms": 100, "same": 5, "gone": 3}
	sb := map[string]float64{"phase.push.virt_ms": 200, "same": 5, "fresh": 7}
	rows := DiffSummaries(sa, sb)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	// "fresh" (A==0 → +Inf) must sort first, then the 100% move, then
	// the -100% "gone", then the unchanged row.
	if rows[0].Stat != "fresh" || !math.IsInf(rows[0].DeltaPct, 1) {
		t.Fatalf("rows[0] = %+v", rows[0])
	}
	if rows[1].Stat != "phase.push.virt_ms" || rows[1].DeltaPct != 100 {
		t.Fatalf("rows[1] = %+v", rows[1])
	}
	if rows[2].Stat != "gone" || rows[2].DeltaPct != -100 {
		t.Fatalf("rows[2] = %+v", rows[2])
	}
	if rows[3].Stat != "same" || rows[3].DeltaPct != 0 {
		t.Fatalf("rows[3] = %+v", rows[3])
	}

	var buf strings.Builder
	if err := FprintDiff(&buf, rows, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "new") {
		t.Errorf("diff output missing 'new' label:\n%s", out)
	}
	if !strings.Contains(out, "(1 stats unchanged)") {
		t.Errorf("diff output missing unchanged count:\n%s", out)
	}
	if strings.Contains(out, "same") {
		t.Errorf("changedOnly diff printed unchanged row:\n%s", out)
	}
}

func TestDiffAnalyses(t *testing.T) {
	a := Analyze(fixedEvents())
	rows := Diff(a, a)
	for _, r := range rows {
		if r.DeltaPct != 0 {
			t.Fatalf("self-diff nonzero: %+v", r)
		}
	}
}
