package obs_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"gbpolar/internal/obs"
)

// TestSpanNestingOrder checks the JSONL emitter's ordering contract: per
// rank, events sort by start time with enclosing (longer) spans before
// the sub-spans they contain, regardless of emission order — End() fires
// child-first, so the raw append order is inverted.
func TestSpanNestingOrder(t *testing.T) {
	tr := obs.NewTrace()

	// Rank 1 first to check rank-major ordering too.
	outer1 := tr.Begin(1, "phase", "E_pol", 10.0)
	inner1 := tr.Begin(1, "phase", "epol.far", 10.0)
	inner1.End(12.0)
	outer1.End(15.0)

	outer0 := tr.Begin(0, "phase", "Born", 0.0)
	innerA := tr.Begin(0, "phase", "born.near", 0.0)
	innerA.End(1.0)
	innerB := tr.Begin(0, "phase", "born.far", 1.0)
	innerB.End(3.0)
	outer0.End(3.0)

	events := tr.Events()
	var got []string
	for _, ev := range events {
		got = append(got, ev.Name)
	}
	want := []string{"Born", "born.near", "born.far", "E_pol", "epol.far"}
	if len(got) != len(want) {
		t.Fatalf("event count = %d, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if events[0].Rank != 0 || events[3].Rank != 1 {
		t.Fatalf("rank-major ordering violated: %+v", events)
	}
	// Virtual durations follow the virtual clock, not the wall clock.
	if events[0].VirtDurUS != 3e6 {
		t.Fatalf("Born virt_dur_us = %g, want 3e6", events[0].VirtDurUS)
	}
	if !events[0].HasVirt {
		t.Fatal("Born span should carry a virtual timestamp")
	}
}

// TestWriteJSONL checks one-event-per-line JSON with the schema fields.
func TestWriteJSONL(t *testing.T) {
	tr := obs.NewTrace()
	s := tr.Begin(2, "collective", "allreduce", 1.5)
	s.End(1.75, obs.F("bytes", 4096))
	tr.Instant(2, "fault", "rank.crash", 2.0, obs.F("rank", 3))

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	span := lines[0]
	if span["name"] != "allreduce" || span["ph"] != "X" {
		t.Fatalf("span line = %v", span)
	}
	if span["virt_us"].(float64) != 1.5e6 {
		t.Fatalf("virt_us = %v, want 1.5e6", span["virt_us"])
	}
	if span["virt_dur_us"].(float64) != 0.25e6 {
		t.Fatalf("virt_dur_us = %v, want 0.25e6", span["virt_dur_us"])
	}
	args := span["args"].(map[string]any)
	if args["bytes"].(float64) != 4096 {
		t.Fatalf("bytes arg = %v", args["bytes"])
	}
	inst := lines[1]
	if inst["ph"] != "i" || inst["name"] != "rank.crash" {
		t.Fatalf("instant line = %v", inst)
	}
}

// TestChromeTraceValid checks that the chrome://tracing export is valid
// JSON with the expected envelope, metadata, and microsecond timestamps.
func TestChromeTraceValid(t *testing.T) {
	tr := obs.NewTrace()
	s := tr.Begin(0, "phase", "build", obs.NoVirtual)
	s.End(obs.NoVirtual)
	c := tr.Begin(0, "collective", "allgatherv", 0.5)
	c.End(0.75, obs.F("bytes", 800))
	tr.Instant(1, "fault", "rank.crash", 1.0)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var spans, instants, meta int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
			if ev.Name == "allgatherv" {
				if ev.TS != 0.5e6 || ev.Dur != 0.25e6 {
					t.Fatalf("allgatherv ts/dur = %g/%g, want virtual clock", ev.TS, ev.Dur)
				}
				if ev.Args["bytes"].(float64) != 800 {
					t.Fatalf("allgatherv args = %v", ev.Args)
				}
			}
		case "i":
			instants++
			if ev.S != "t" {
				t.Fatalf("instant scope = %q, want t", ev.S)
			}
		case "M":
			meta++
		}
	}
	if spans != 2 || instants != 1 {
		t.Fatalf("spans=%d instants=%d, want 2/1", spans, instants)
	}
	if meta < 4 { // ≥2 process_name + ≥2 thread_name
		t.Fatalf("metadata events = %d, want >= 4", meta)
	}
}

// TestFprintTable smoke-tests the per-phase summary table.
func TestFprintTable(t *testing.T) {
	tr := obs.NewTrace()
	for i := 0; i < 3; i++ {
		s := tr.Begin(0, "phase", "Born", float64(i))
		s.End(float64(i)+0.5, obs.F("bytes", 100))
	}
	var buf bytes.Buffer
	if err := tr.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Born") || !strings.Contains(out, "3") {
		t.Fatalf("table missing aggregated row:\n%s", out)
	}
}

// TestNilTraceInert: every operation on a nil trace and its spans must be
// a safe no-op — this is the disabled-observability fast path.
func TestNilTraceInert(t *testing.T) {
	var tr *obs.Trace
	s := tr.Begin(0, "phase", "x", 1.0)
	s.End(2.0, obs.F("bytes", 1))
	tr.Instant(0, "fault", "y", obs.NoVirtual)
	if tr.NumEvents() != 0 || tr.Events() != nil {
		t.Fatal("nil trace recorded events")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatal("nil trace wrote output")
	}
	if err := tr.WriteChromeTrace(&buf); err != nil || buf.Len() != 0 {
		t.Fatal("nil trace wrote chrome output")
	}

	var o *obs.Obs
	if o.Enabled() {
		t.Fatal("nil Obs reports enabled")
	}
	o.Begin(0, "phase", "x", 1.0).End(2.0)
	o.Instant(0, "fault", "y", 1.0)
	o.Counter("c").Inc()
	o.Gauge("g").Set(1)
	o.Histogram("h").Observe(1)
}

// TestManifest checks the run manifest round-trips through JSON with the
// reproducibility fields populated.
func TestManifest(t *testing.T) {
	m := obs.NewManifest("gbtest", 42, map[string]any{"atoms": 5000})
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back["tool"] != "gbtest" || back["seed"].(float64) != 42 {
		t.Fatalf("manifest = %v", back)
	}
	for _, key := range []string{"time", "git", "os", "arch", "go"} {
		if v, ok := back[key].(string); !ok || v == "" {
			t.Fatalf("manifest missing %q: %v", key, back)
		}
	}
	if back["cpus"].(float64) < 1 {
		t.Fatalf("cpus = %v", back["cpus"])
	}
	cfg := back["config"].(map[string]any)
	if cfg["atoms"].(float64) != 5000 {
		t.Fatalf("config = %v", cfg)
	}
}
