package obs_test

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"

	"gbpolar/internal/obs"
)

// rtTrace builds a timeline exercising every schema variant: nested
// virtual spans on two ranks, a wall-only span, args, and instants.
func rtTrace() *obs.Trace {
	tr := obs.NewTrace()
	b := tr.Begin(0, "phase", "build", obs.NoVirtual)
	b.End(obs.NoVirtual)
	outer := tr.Begin(0, "phase", "born", 0.0)
	inner := tr.Begin(0, "phase", "born.far", 0.25)
	inner.End(0.75, obs.F("rows", 12))
	outer.End(1.0)
	c := tr.Begin(1, "collective", "allreduce", 1.0)
	c.End(1.5, obs.F("bytes", 4096), obs.F("wait_us", 2e5))
	tr.Instant(1, "fault", "rank.crash", 2.0, obs.F("dead_rank", 1))
	tr.Instant(0, "fault", "death.detect", 2.25)
	return tr
}

// TestReadJSONLRoundTrip is the satellite's contract: write → read →
// write must be byte-identical, and the re-read trace must replay the
// same analyzed timeline.
func TestReadJSONLRoundTrip(t *testing.T) {
	tr := rtTrace()

	var first bytes.Buffer
	if err := tr.WriteJSONL(&first); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadJSONL(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEvents() != tr.NumEvents() {
		t.Fatalf("re-read %d events, wrote %d", back.NumEvents(), tr.NumEvents())
	}
	var second bytes.Buffer
	if err := back.WriteJSONL(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("round-trip not byte-identical:\n--- first ---\n%s--- second ---\n%s",
			first.String(), second.String())
	}

	// Field-level spot checks on the replayed events.
	a, b := tr.Events(), back.Events()
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Rank != b[i].Rank || a[i].Ph != b[i].Ph ||
			a[i].VirtUS != b[i].VirtUS || a[i].VirtDurUS != b[i].VirtDurUS ||
			a[i].HasVirt != b[i].HasVirt || a[i].WallDurUS != b[i].WallDurUS {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
		for k, v := range a[i].Args {
			if b[i].Args[k] != v {
				t.Fatalf("event %d arg %q = %v, want %v", i, k, b[i].Args[k], v)
			}
		}
	}
}

// TestReadJSONLBlankAndMalformed: blank lines are skipped; a broken line
// fails with its 1-based line number; an unknown phase type is rejected.
func TestReadJSONLBlankAndMalformed(t *testing.T) {
	good := `{"name":"born","cat":"phase","ph":"X","rank":0,"wall_us":1,"virt_us":0,"virt":true}`
	tr, err := obs.ReadJSONL(strings.NewReader(good + "\n\n  \n" + good + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumEvents() != 2 {
		t.Fatalf("events = %d, want 2 (blank lines must be skipped)", tr.NumEvents())
	}

	_, err = obs.ReadJSONL(strings.NewReader(good + "\n{not json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("malformed line error = %v, want line 2", err)
	}

	bad := `{"name":"x","cat":"phase","ph":"B","rank":0}`
	_, err = obs.ReadJSONL(strings.NewReader(bad))
	if err == nil || !strings.Contains(err.Error(), `unknown phase type "B"`) {
		t.Fatalf("unknown ph error = %v", err)
	}
}

// TestOpenSpansExportTruncated: spans still open at export time must be
// emitted explicitly with a `truncated` marker and a measured wall
// duration — never silently as zero-duration events — and must not
// carry a fabricated virtual duration.
func TestOpenSpansExportTruncated(t *testing.T) {
	tr := obs.NewTrace()
	done := tr.Begin(0, "phase", "born", 0.0)
	done.End(1.0)
	_ = tr.Begin(1, "phase", "epol", 1.0) // never ended

	if tr.NumEvents() != 2 {
		t.Fatalf("NumEvents = %d, want 2 (open span counted)", tr.NumEvents())
	}
	events := tr.Events()
	var open *obs.Event
	for i := range events {
		if events[i].Args["truncated"] == 1 {
			open = &events[i]
		}
	}
	if open == nil {
		t.Fatalf("no truncated event in export: %+v", events)
	}
	if open.Name != "epol" || open.Rank != 1 || open.Ph != "X" {
		t.Fatalf("truncated event = %+v", open)
	}
	if open.WallDurUS <= 0 {
		t.Fatal("truncated span exported with zero wall duration")
	}
	if open.VirtDurUS != 0 {
		t.Fatalf("truncated span fabricated a virtual duration %g", open.VirtDurUS)
	}
	if !open.HasVirt || open.VirtUS != 1e6 {
		t.Fatalf("truncated span lost its virtual start: %+v", open)
	}

	// The JSONL and chrome exports both carry the marker.
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"truncated":1`) {
		t.Fatalf("JSONL missing truncated marker:\n%s", buf.String())
	}
	buf.Reset()
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"truncated":1`) {
		t.Fatalf("chrome trace missing truncated marker:\n%s", buf.String())
	}
}

// TestSpanDoubleEnd: ending a span twice records exactly one event and
// leaves nothing open.
func TestSpanDoubleEnd(t *testing.T) {
	tr := obs.NewTrace()
	s := tr.Begin(0, "phase", "push", 0.0)
	s.End(1.0)
	s.End(2.0)
	if tr.NumEvents() != 1 {
		t.Fatalf("NumEvents = %d, want 1 after double End", tr.NumEvents())
	}
	if ev := tr.Events()[0]; ev.VirtDurUS != 1e6 {
		t.Fatalf("first End must win: virt_dur_us = %g", ev.VirtDurUS)
	}
}

// TestTraceLogger: a trace with a logger streams each recorded event as
// a structured line carrying the rank/name/virtual-clock fields (the
// gbpol -v progress view).
func TestTraceLogger(t *testing.T) {
	tr := obs.NewTrace()
	var buf bytes.Buffer
	tr.SetLogger(slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey { // deterministic output
				return slog.Attr{}
			}
			return a
		},
	})))

	s := tr.Begin(2, "phase", "epol", 1.0)
	s.End(1.5)
	tr.Instant(0, "fault", "rank.crash", 2.0, obs.F("dead_rank", 1))

	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("logged %d lines, want 2:\n%s", len(lines), out)
	}
	for _, want := range []string{"msg=phase", "name=epol", "rank=2", "virt_clock_ms=1500", "virt_ms=500"} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("span line missing %q: %s", want, lines[0])
		}
	}
	for _, want := range []string{"msg=fault", "name=rank.crash", "rank=0", "dead_rank=1"} {
		if !strings.Contains(lines[1], want) {
			t.Errorf("instant line missing %q: %s", want, lines[1])
		}
	}

	tr.SetLogger(nil)
	tr.Instant(0, "fault", "msg.drop", 3.0)
	if strings.Contains(buf.String(), "msg.drop") {
		t.Fatal("logger kept streaming after SetLogger(nil)")
	}
}
