package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// This file converts a Trace into the Chrome Trace Event Format (the
// JSON array flavour), loadable in chrome://tracing and Perfetto. Each
// rank becomes one "process" (pid = rank) and each event category one
// named "thread" inside it, so phases, collectives and fault events
// stack as separate swim lanes per rank. Timestamps use the virtual
// clock when the event has one (the authoritative time of modeled
// runs) and the wall clock otherwise.

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeTid maps an event category to a stable lane index.
func chromeTid(cat string) int {
	switch cat {
	case "phase":
		return 0
	case "collective", "comm":
		return 1
	case "fault", "recover":
		return 2
	default:
		return 3
	}
}

// chromeLaneNames mirrors chromeTid for thread_name metadata.
var chromeLaneNames = map[int]string{
	0: "phases",
	1: "communication",
	2: "faults+recovery",
	3: "other",
}

// WriteChromeTrace emits the timeline as a chrome://tracing JSON array.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	events := t.Events()
	out := make([]chromeEvent, 0, len(events)+8)

	// Metadata: name each rank's process and each category lane, for
	// every (rank, lane) pair that actually occurs.
	seenRank := map[int]bool{}
	seenLane := map[[2]int]bool{}
	for _, ev := range events {
		if !seenRank[ev.Rank] {
			seenRank[ev.Rank] = true
			out = append(out, chromeEvent{
				Name: "process_name", Ph: "M", Pid: ev.Rank,
				Args: map[string]any{"name": "rank"},
			})
		}
		lane := chromeTid(ev.Cat)
		if key := [2]int{ev.Rank, lane}; !seenLane[key] {
			seenLane[key] = true
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: ev.Rank, Tid: lane,
				Args: map[string]any{"name": chromeLaneNames[lane]},
			})
		}
	}

	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ph:   ev.Ph,
			Pid:  ev.Rank,
			Tid:  chromeTid(ev.Cat),
			TS:   ev.start(),
			Dur:  ev.dur(),
		}
		if ev.Ph == "i" {
			ce.S = "t" // thread-scoped instant marker
		}
		if len(ev.Args) > 0 || ev.HasVirt {
			ce.Args = make(map[string]any, len(ev.Args)+2)
			for k, v := range ev.Args {
				ce.Args[k] = v
			}
			// Keep the other clock domain visible in the inspector.
			ce.Args["wall_us"] = ev.WallUS
			if ev.WallDurUS > 0 {
				ce.Args["wall_dur_us"] = ev.WallDurUS
			}
		}
		out = append(out, ce)
	}

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{out, "ms"}); err != nil {
		return err
	}
	return bw.Flush()
}
