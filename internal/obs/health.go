package obs

import (
	"fmt"
	"math"
	"runtime/metrics"
	"time"
)

// HealthSampler is the per-rank runtime health probe: a single ticker
// goroutine that samples the Go runtime (heap, GC, goroutines, scheduler
// latency) and the trace's open spans into the observer's lock-free
// registry. Everything lands in existing metric kinds — gauges and
// power-of-two histograms — so a worker's health rides the PR-8
// telemetry frames to the coordinator with zero new wire types: after
// Absorb the coordinator sees each worker's gauges as
// rank<r>.health.<name>.
//
// The open-span age gauges (health.open.phase.<name>_us) are the piece
// the watchdog cannot get from the trace alone: telemetry ships only
// closed spans, so a rank stuck inside a phase is invisible to the
// coordinator until the phase ends — exactly when detection is too
// late. The sampler publishes how long the current phase span has been
// open, and zeroes the gauge once the span closes, giving the watchdog
// a live view of in-flight work.
type HealthSampler struct {
	o        *Obs
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}

	samples []metrics.Sample // reused across ticks; indexed by healthRuntimeMetrics
	// prevPause holds the last-seen cumulative /gc/pauses counts so each
	// tick folds only the new pauses into the health.gc_pause_us
	// histogram.
	prevPause []uint64
	// openSet tracks the open-span gauges set on the previous tick so
	// spans that closed since are zeroed rather than left stale.
	openSet map[string]bool
}

// DefaultHealthInterval is the sampler cadence when interval <= 0:
// coarse enough to stay far inside the observability budget (a tick is
// a few runtime/metrics reads and a handful of atomic stores), fine
// enough that a stalled phase shows up within a couple of watchdog
// windows.
const DefaultHealthInterval = 500 * time.Millisecond

// Runtime metrics sampled each tick, in fixed order.
const (
	healthIdxHeap = iota
	healthIdxGoroutines
	healthIdxGCCycles
	healthIdxSchedLat
	healthIdxGCPause
	healthNumMetrics
)

var healthRuntimeMetrics = [healthNumMetrics]string{
	healthIdxHeap:       "/memory/classes/heap/objects:bytes",
	healthIdxGoroutines: "/sched/goroutines:goroutines",
	healthIdxGCCycles:   "/gc/cycles/total:gc-cycles",
	healthIdxSchedLat:   "/sched/latencies:seconds",
	healthIdxGCPause:    "/gc/pauses:seconds",
}

// StartHealthSampler launches the sampler goroutine against o at the
// given cadence (<= 0 uses DefaultHealthInterval). Returns nil when the
// observer is disabled; Stop is nil-safe, so callers need no branch.
func StartHealthSampler(o *Obs, interval time.Duration) *HealthSampler {
	if !o.Enabled() {
		return nil
	}
	if interval <= 0 {
		interval = DefaultHealthInterval
	}
	s := &HealthSampler{
		o:        o,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		samples:  make([]metrics.Sample, healthNumMetrics),
		openSet:  map[string]bool{},
	}
	for i, name := range healthRuntimeMetrics {
		s.samples[i].Name = name
	}
	go s.loop()
	return s
}

func (s *HealthSampler) loop() {
	defer close(s.done)
	tick := time.NewTicker(s.interval)
	defer tick.Stop()
	s.sample() // immediate first sample so short runs still get one
	for {
		select {
		case <-s.stop:
			s.sample() // final sample: zero closed open-span gauges
			return
		case <-tick.C:
			s.sample()
		}
	}
}

// Stop halts the sampler and blocks until its goroutine has exited,
// after one final sample so gauges reflect the end state. Idempotent
// and nil-safe.
func (s *HealthSampler) Stop() {
	if s == nil {
		return
	}
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}

// sample reads the runtime metrics and the trace's open spans into the
// registry. One tick is a few atomic stores — no allocation beyond the
// first tick's gauge interning.
func (s *HealthSampler) sample() {
	metrics.Read(s.samples)

	if v := s.samples[healthIdxHeap].Value; v.Kind() == metrics.KindUint64 {
		s.o.Gauge("health.heap_bytes").Set(float64(v.Uint64()))
	}
	if v := s.samples[healthIdxGoroutines].Value; v.Kind() == metrics.KindUint64 {
		s.o.Gauge("health.goroutines").Set(float64(v.Uint64()))
	}
	if v := s.samples[healthIdxGCCycles].Value; v.Kind() == metrics.KindUint64 {
		s.o.Gauge("health.gc_cycles").Set(float64(v.Uint64()))
	}
	if v := s.samples[healthIdxSchedLat].Value; v.Kind() == metrics.KindFloat64Histogram {
		if h := v.Float64Histogram(); h != nil {
			p95 := histQuantileSeconds(h, 0.95)
			s.o.Gauge("health.sched_latency_p95_us").Set(p95 * 1e6)
		}
	}
	if v := s.samples[healthIdxGCPause].Value; v.Kind() == metrics.KindFloat64Histogram {
		s.foldGCPauses(v.Float64Histogram())
	}

	s.sampleOpenSpans()
}

// foldGCPauses feeds the pauses accumulated since the previous tick into
// the health.gc_pause_us power-of-two histogram, each bucket's new count
// observed at the bucket midpoint in microseconds. The registry
// histogram then travels as an exact delta in telemetry frames like any
// other.
func (s *HealthSampler) foldGCPauses(h *metrics.Float64Histogram) {
	if h == nil {
		return
	}
	if s.prevPause == nil || len(s.prevPause) != len(h.Counts) {
		// First tick (or runtime changed bucket layout): swallow history,
		// start folding deltas from here.
		s.prevPause = append([]uint64(nil), h.Counts...)
		return
	}
	dst := s.o.Histogram("health.gc_pause_us")
	for i, c := range h.Counts {
		d := c - s.prevPause[i]
		if d == 0 || d > c { // d > c: counter reset, skip this lap
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := midpointSeconds(lo, hi)
		us := int64(mid * 1e6)
		if us < 1 {
			us = 1
		}
		// Cap the per-bucket fold so a pathological tick cannot spin; the
		// histogram still records the magnitude via repeated observation.
		if d > 1024 {
			d = 1024
		}
		for n := uint64(0); n < d; n++ {
			dst.Observe(us)
		}
	}
	copy(s.prevPause, h.Counts)
}

// sampleOpenSpans publishes the age of each currently-open phase span as
// health.open.phase.<name>_us and zeroes gauges for spans that closed
// since the previous tick. Non-phase categories are skipped: phases are
// what the watchdog judges, and collective spans open and close far
// faster than any useful cadence.
func (s *HealthSampler) sampleOpenSpans() {
	cur := map[string]bool{}
	for _, ev := range s.o.Trace.OpenSpans() {
		if ev.Cat != "phase" {
			continue
		}
		name := fmt.Sprintf("health.open.phase.%s_us", ev.Name)
		s.o.Gauge(name).Set(ev.WallDurUS)
		cur[name] = true
	}
	for name := range s.openSet {
		if !cur[name] {
			s.o.Gauge(name).Set(0)
		}
	}
	s.openSet = cur
}

// histQuantileSeconds interpolates quantile q from a runtime/metrics
// cumulative histogram (values in seconds). Infinite edge buckets
// collapse to their finite boundary.
func histQuantileSeconds(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= target {
			return midpointSeconds(h.Buckets[i], h.Buckets[i+1])
		}
	}
	return midpointSeconds(h.Buckets[len(h.Buckets)-2], h.Buckets[len(h.Buckets)-1])
}

// midpointSeconds is the representative value for a histogram bucket,
// tolerating the ±Inf edge buckets runtime/metrics uses.
func midpointSeconds(lo, hi float64) float64 {
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, +1):
		return 0
	case math.IsInf(lo, -1):
		return hi
	case math.IsInf(hi, +1):
		return lo
	default:
		return (lo + hi) / 2
	}
}
