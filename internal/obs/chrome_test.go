package obs_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"gbpolar/internal/obs"
)

// chromeDoc parses a chrome export for the edge-case tests.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func exportChrome(t *testing.T, tr *obs.Trace) chromeDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.String())
	}
	return doc
}

// TestChromeTraceEmpty: a trace with no events still exports a valid
// envelope with an empty (non-null is not required) traceEvents array.
func TestChromeTraceEmpty(t *testing.T) {
	doc := exportChrome(t, obs.NewTrace())
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("empty trace exported %d events", len(doc.TraceEvents))
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
}

// TestChromeTraceMultiRankOrdering: each rank becomes one pid with its
// own metadata, and data events within a rank appear in start-time
// order (the Events() contract carried through the converter).
func TestChromeTraceMultiRankOrdering(t *testing.T) {
	tr := obs.NewTrace()
	// Emit out of rank order on purpose.
	for _, r := range []int{3, 1, 0, 2} {
		s := tr.Begin(r, "phase", "born", float64(r))
		s.End(float64(r) + 0.5)
		c := tr.Begin(r, "collective", "allreduce", float64(r)+0.5)
		c.End(float64(r)+0.75, obs.F("bytes", 64))
	}
	doc := exportChrome(t, tr)

	procNames := map[int]bool{}
	threadNames := map[[2]int]bool{}
	lastStart := map[int]float64{}
	lastRank := -1 << 30
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			procNames[ev.Pid] = true
		case ev.Ph == "M" && ev.Name == "thread_name":
			threadNames[[2]int{ev.Pid, ev.Tid}] = true
		case ev.Ph == "X":
			if ev.Pid < lastRank {
				t.Fatalf("rank-major order violated: pid %d after %d", ev.Pid, lastRank)
			}
			lastRank = ev.Pid
			if prev, ok := lastStart[ev.Pid]; ok && ev.TS < prev {
				t.Fatalf("rank %d events out of time order: %g after %g", ev.Pid, ev.TS, prev)
			}
			lastStart[ev.Pid] = ev.TS
		}
	}
	for r := 0; r < 4; r++ {
		if !procNames[r] {
			t.Errorf("no process_name metadata for rank %d", r)
		}
		if !threadNames[[2]int{r, 0}] || !threadNames[[2]int{r, 1}] {
			t.Errorf("rank %d missing phase/communication lane metadata", r)
		}
	}
}

// TestChromeTraceNoArgs: a wall-only span with no arguments must export
// without an args object at all, and a virtual-clocked span without
// explicit args still carries the wall-clock cross-reference.
func TestChromeTraceNoArgs(t *testing.T) {
	tr := obs.NewTrace()
	s := tr.Begin(0, "phase", "build", obs.NoVirtual)
	s.End(obs.NoVirtual)
	v := tr.Begin(0, "phase", "born", 0.0)
	v.End(1.0)
	doc := exportChrome(t, tr)

	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph != "X":
		case ev.Name == "build":
			if ev.Args != nil {
				t.Fatalf("no-arg wall span exported args: %v", ev.Args)
			}
		case ev.Name == "born":
			if _, ok := ev.Args["wall_us"]; !ok {
				t.Fatalf("virtual span lost its wall cross-reference: %v", ev.Args)
			}
		}
	}
}

// TestChromeTraceInstantsInterleaved: instants landing between and
// inside nested spans keep their own timestamps and the fault lane,
// while the nesting (parent before child at the same pid) survives.
func TestChromeTraceInstantsInterleaved(t *testing.T) {
	tr := obs.NewTrace()
	outer := tr.Begin(0, "phase", "epol", 0.0)
	tr.Instant(0, "fault", "msg.drop", 0.25)
	inner := tr.Begin(0, "phase", "epol.far", 0.5)
	tr.Instant(0, "fault", "msg.delay", 0.75)
	inner.End(1.0)
	outer.End(2.0)
	tr.Instant(0, "fault", "rank.crash", 3.0)
	doc := exportChrome(t, tr)

	idx := map[string]int{}
	for i, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		idx[ev.Name] = i
		if ev.Ph == "i" {
			if ev.Tid != 2 {
				t.Errorf("instant %q on lane %d, want fault lane 2", ev.Name, ev.Tid)
			}
		}
	}
	for _, name := range []string{"epol", "epol.far", "msg.drop", "msg.delay", "rank.crash"} {
		if _, ok := idx[name]; !ok {
			t.Fatalf("chrome export missing %q (have %v)", name, idx)
		}
	}
	if idx["epol"] > idx["epol.far"] {
		t.Error("enclosing span must precede its nested span")
	}
	// Instants sort by their own timestamps relative to the spans.
	if !(idx["msg.drop"] > idx["epol"] && idx["msg.delay"] > idx["epol.far"] && idx["rank.crash"] > idx["epol"]) {
		t.Errorf("instants not interleaved by timestamp: %v", idx)
	}
}
