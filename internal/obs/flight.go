package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"
)

// FlightRecorder keeps the most recent trace events in a fixed-size
// lock-free ring — the crash flight recorder. Recording is a single
// atomic fetch-add plus a pointer store, cheap enough to mirror every
// event of a live run; Dump writes the ring to a timestamped JSONL file
// (the same schema as Trace.WriteJSONL, readable by ReadJSONL and
// gbtrace) when something goes wrong: a detected death, a degradation, a
// panic, or SIGTERM. Attach to an observer with Obs.AttachFlight.
//
// The ring trades exactness for being wait-free: a reader racing writers
// can observe a slot from the previous lap, so Dump output is the
// *approximately* last N events — which is precisely what a postmortem
// needs.
type FlightRecorder struct {
	dir   string
	slots []atomic.Pointer[Event]
	pos   atomic.Uint64
}

// DefaultFlightEvents is the ring capacity used when size <= 0.
const DefaultFlightEvents = 4096

// NewFlightRecorder returns a ring holding the last size events (size <=
// 0 uses DefaultFlightEvents); dumps are written into dir (created on
// first dump).
func NewFlightRecorder(size int, dir string) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightEvents
	}
	return &FlightRecorder{dir: dir, slots: make([]atomic.Pointer[Event], size)}
}

// Record files one event into the ring, overwriting the oldest once
// full. Safe for any number of concurrent writers; no-op on nil.
func (f *FlightRecorder) Record(ev Event) {
	if f == nil {
		return
	}
	i := f.pos.Add(1) - 1
	f.slots[i%uint64(len(f.slots))].Store(&ev)
}

// Events returns the ring contents, oldest first. Under concurrent
// writers the snapshot is approximate (see the type comment); after
// writers quiesce it is exactly the last min(recorded, size) events in
// record order.
func (f *FlightRecorder) Events() []Event {
	if f == nil {
		return nil
	}
	n := uint64(len(f.slots))
	end := f.pos.Load()
	start := uint64(0)
	if end > n {
		start = end - n
	}
	out := make([]Event, 0, end-start)
	for i := start; i < end; i++ {
		if p := f.slots[i%n].Load(); p != nil {
			out = append(out, *p)
		}
	}
	return out
}

// EventsSince returns the events recorded after cursor (oldest first)
// plus the new cursor — the per-client incremental window the /events
// stream serves. A cursor of 0 starts at the oldest event still in the
// ring; a client that fell more than the ring size behind is skipped
// forward (the ring overwrote what it missed). Under concurrent writers
// the snapshot is approximate, like Events. Nil-safe.
func (f *FlightRecorder) EventsSince(cursor uint64) ([]Event, uint64) {
	if f == nil {
		return nil, cursor
	}
	n := uint64(len(f.slots))
	end := f.pos.Load()
	start := cursor
	if end > n && start < end-n {
		start = end - n
	}
	if start >= end {
		return nil, end
	}
	out := make([]Event, 0, end-start)
	for i := start; i < end; i++ {
		if p := f.slots[i%n].Load(); p != nil {
			out = append(out, *p)
		}
	}
	return out, end
}

// Dump writes the ring to dir/flight-<reason>-<pid>-<unixnano>.jsonl and
// returns the path. The file is one JSON event per line — loadable with
// ReadJSONL, analyzable with gbtrace. Nil-safe (returns "" with no
// error).
func (f *FlightRecorder) Dump(reason string) (string, error) {
	if f == nil {
		return "", nil
	}
	if err := os.MkdirAll(f.dir, 0o755); err != nil {
		return "", fmt.Errorf("obs: flight dump: %w", err)
	}
	path := filepath.Join(f.dir, fmt.Sprintf("flight-%s-%d-%d.jsonl",
		sanitizeReason(reason), os.Getpid(), time.Now().UnixNano()))
	file, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("obs: flight dump: %w", err)
	}
	bw := bufio.NewWriter(file)
	enc := json.NewEncoder(bw)
	for _, ev := range f.Events() {
		if err := enc.Encode(&ev); err != nil {
			file.Close()
			return "", fmt.Errorf("obs: flight dump: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		file.Close()
		return "", fmt.Errorf("obs: flight dump: %w", err)
	}
	if err := file.Close(); err != nil {
		return "", fmt.Errorf("obs: flight dump: %w", err)
	}
	return path, nil
}

// sanitizeReason keeps dump filenames shell- and glob-friendly.
func sanitizeReason(s string) string {
	if s == "" {
		return "dump"
	}
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			b[i] = '-'
		}
	}
	return string(b)
}

// DumpOnSignal installs a handler that dumps the ring when any of the
// given signals arrives (SIGTERM by default), then re-raises the signal
// with the default disposition so the process still terminates with the
// conventional exit status.
func (f *FlightRecorder) DumpOnSignal(sigs ...os.Signal) {
	if f == nil {
		return
	}
	if len(sigs) == 0 {
		sigs = []os.Signal{syscall.SIGTERM}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, sigs...)
	go func() {
		s := <-ch
		f.Dump(s.String())
		signal.Stop(ch)
		if sig, ok := s.(syscall.Signal); ok {
			syscall.Kill(os.Getpid(), sig)
		} else {
			os.Exit(1)
		}
	}()
}
