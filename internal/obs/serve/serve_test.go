package serve

import (
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"gbpolar/internal/obs"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// The full endpoint surface against a live listener: Prometheus text on
// /metrics, readiness toggling on /readyz, liveness always 200, pprof
// index served.
func TestServeEndpoint(t *testing.T) {
	o := obs.New()
	o.Counter("net.frames.sent").Add(9)
	o.Gauge("net.rank_bytes").Set(1.5)
	o.Histogram("net.heartbeat.rtt_us").Observe(100)
	o.Histogram("net.heartbeat.rtt_us").Observe(3000)
	sp := o.Begin(0, "phase", "build", obs.NoVirtual)
	sp.End(obs.NoVirtual)

	var ready atomic.Bool
	s, err := Start("127.0.0.1:0", o, func() Health {
		return Health{State: "running", Ready: ready.Load(), Size: 4, LiveRanks: 3, Rounds: 2}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body, hdr := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	for _, want := range []string{
		"gbpol_up 1",
		"gbpol_trace_events 1",
		"# TYPE gbpol_net_frames_sent counter",
		"gbpol_net_frames_sent 9",
		"gbpol_net_rank_bytes 1.5",
		"# TYPE gbpol_net_heartbeat_rtt_us histogram",
		`gbpol_net_heartbeat_rtt_us_bucket{le="+Inf"} 2`,
		"gbpol_net_heartbeat_rtt_us_sum 3100",
		"gbpol_net_heartbeat_rtt_us_count 2",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}

	if code, body, _ := get(t, base+"/healthz"); code != http.StatusOK ||
		!strings.Contains(body, `"live_ranks": 3`) {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _, _ := get(t, base+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while not ready = %d, want 503", code)
	}
	ready.Store(true)
	if code, body, _ := get(t, base+"/readyz"); code != http.StatusOK ||
		!strings.Contains(body, `"ready": true`) {
		t.Fatalf("/readyz once ready = %d %q", code, body)
	}
	if code, _, _ := get(t, base+"/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}

// A nil observer and a nil health func still serve: gbpol_up pins the
// scrape and /readyz defaults to ready.
func TestServeNilObserver(t *testing.T) {
	s, err := Start("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()
	if code, body, _ := get(t, base+"/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "gbpol_up 1") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, _, _ := get(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("nil-health /readyz = %d, want 200", code)
	}
}

// Prometheus sample lines must carry sane names even for hostile metric
// names.
func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"net.heartbeat.rtt_us": "gbpol_net_heartbeat_rtt_us",
		"9lives":               "gbpol_9lives",
		"a b/c":                "gbpol_a_b_c",
	} {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
