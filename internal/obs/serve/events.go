package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"gbpolar/internal/obs"
)

// The /events endpoint streams newline-delimited JSON snapshots — one
// StreamFrame per line — at a client-chosen interval. It is the feed
// behind `gbtrace top`: each frame carries the merged registry (with
// histogram quantiles but without the 65-bucket arrays, to keep lines
// terminal-sized), the span window recorded since the client's previous
// frame, the health summary, the heartbeat RTT quantiles, and the
// watchdog's verdicts when one is wired. Span deltas come from the
// flight-recorder ring when one is attached (cheap, lock-free, bounded)
// and fall back to the trace's event log otherwise; either way the
// cursor is per-client, so concurrent watchers never steal each other's
// deltas. The handler exits as soon as the client disconnects — leaving
// no goroutine behind — which the serve tests pin down.

// StreamFrame is one line of the /events NDJSON stream.
type StreamFrame struct {
	// Seq numbers frames per client, starting at 1.
	Seq int64 `json:"seq"`
	// WallMS is the coordinator's wall-clock time of the snapshot, in
	// milliseconds since its trace epoch.
	WallMS  float64             `json:"wall_ms"`
	Health  Health              `json:"health"`
	Metrics obs.MetricsSnapshot `json:"metrics"`
	// Spans is the window of trace events recorded since the previous
	// frame (all of them on the first frame, bounded by the flight ring).
	Spans []obs.Event `json:"spans,omitempty"`
	// RTT surfaces the heartbeat round-trip quantiles (µs) when the
	// net.heartbeat.rtt_us histogram exists.
	RTT *RTTQuantiles `json:"rtt_us,omitempty"`
	// Verdicts is the watchdog's current anomaly list, when one is wired.
	Verdicts any `json:"verdicts,omitempty"`
}

// RTTQuantiles are the heartbeat round-trip percentiles in microseconds.
type RTTQuantiles struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

const (
	defaultStreamInterval = time.Second
	minStreamInterval     = 50 * time.Millisecond
	maxStreamInterval     = 30 * time.Second
)

// streamEvents serves one /events client until it disconnects.
func streamEvents(w http.ResponseWriter, r *http.Request, o *obs.Obs, health func() Health, verdicts func() any) {
	interval := defaultStreamInterval
	if raw := r.URL.Query().Get("interval"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil {
			// Bare numbers are seconds, for curl ergonomics.
			if secs, err2 := strconv.ParseFloat(raw, 64); err2 == nil {
				d, err = time.Duration(secs*float64(time.Second)), nil
			}
		}
		if err != nil {
			http.Error(w, "bad interval: "+raw, http.StatusBadRequest)
			return
		}
		interval = min(max(d, minStreamInterval), maxStreamInterval)
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")

	enc := json.NewEncoder(w)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var (
		seq       int64
		flightCur uint64
		traceCur  int
		useFlight = o.Flight() != nil
		ctx       = r.Context()
	)
	for {
		seq++
		frame := StreamFrame{Seq: seq}
		if o != nil {
			frame.WallMS = o.Trace.NowUS() / 1e3
			if useFlight {
				frame.Spans, flightCur = o.Flight().EventsSince(flightCur)
			} else {
				frame.Spans, traceCur = o.Trace.EventsSince(traceCur)
			}
			if o.Metrics != nil {
				frame.Metrics = o.Metrics.Snapshot()
				trimBuckets(&frame.Metrics)
				if h, ok := frame.Metrics.Histograms["net.heartbeat.rtt_us"]; ok {
					frame.RTT = &RTTQuantiles{P50: h.P50, P95: h.P95, P99: h.P99}
				}
			}
		}
		if health != nil {
			frame.Health = health()
		}
		if verdicts != nil {
			frame.Verdicts = verdicts()
		}
		if err := enc.Encode(&frame); err != nil {
			return // client went away mid-write
		}
		flusher.Flush()
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

// trimBuckets drops the per-histogram bucket arrays from a snapshot: the
// stream's consumers read the precomputed quantiles, and 65 buckets per
// histogram per frame would dominate the line size.
func trimBuckets(snap *obs.MetricsSnapshot) {
	for k, h := range snap.Histograms {
		h.Buckets = nil
		snap.Histograms[k] = h
	}
}
