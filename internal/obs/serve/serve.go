// Package serve is the live endpoint of the observability plane: an
// opt-in HTTP listener exposing the lock-free metrics registry in
// Prometheus text exposition format (/metrics), liveness and readiness
// probes carrying cluster membership state (/healthz, /readyz), and the
// standard Go profiling surface (/debug/pprof). Both the coordinator and
// workers can serve it (gbpol -obs-addr); nothing here is on a hot path —
// every handler snapshots on demand.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	gonet "net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"

	"gbpolar/internal/obs"
)

// Health is the cluster-state summary behind /healthz and /readyz.
type Health struct {
	// State names the process's phase: "starting", "running",
	// "degraded", "anomalous", "worker", "done". "anomalous" means the
	// watchdog has a standing verdict but the cluster is structurally
	// healthy; "degraded" (a dead rank) takes precedence over it.
	State string `json:"state"`
	// Ready reports whether the process is fully operational — for a
	// coordinator, every founding rank joined and none is dead.
	Ready bool `json:"ready"`
	// Size/LiveRanks describe membership (coordinator only).
	Size      int `json:"size,omitempty"`
	LiveRanks int `json:"live_ranks,omitempty"`
	// Rounds counts completed collectives.
	Rounds int `json:"rounds_completed"`
	// PendingJoins counts rejoiners queued for the next boundary.
	PendingJoins int `json:"pending_joins,omitempty"`
	// Anomalies counts watchdog verdicts fired so far.
	Anomalies int `json:"anomalies,omitempty"`
}

// Server is a running observability endpoint.
type Server struct {
	ln  gonet.Listener
	srv *http.Server
}

// Start listens on addr (host:port; port 0 binds an ephemeral one — read
// the result from Addr) and serves the endpoint surface for o. health,
// when non-nil, backs /healthz and /readyz; a nil health makes /readyz
// always ready (a standalone process with no membership to wait for).
func Start(addr string, o *obs.Obs, health func() Health) (*Server, error) {
	return StartWith(addr, o, health, nil)
}

// StartWith is Start plus a verdicts source: when non-nil it is polled
// per /events frame so the stream (and `gbtrace top`) carries the
// anomaly watchdog's current verdict list. Kept separate so existing
// Start callers need no churn.
func StartWith(addr string, o *obs.Obs, health func() Health, verdicts func() any) (*Server, error) {
	ln, err := gonet.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: serve listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		streamEvents(w, r, o, health, verdicts)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteMetrics(w, o)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeHealth(w, health, false)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		writeHealth(w, health, true)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (host:port) — the source of
// truth when Start was given port 0.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }

// writeHealth renders /healthz (alive — always 200) and /readyz (503
// until Ready). Both carry the JSON health body so an operator's curl
// shows membership state, live ranks and completed rounds.
func writeHealth(w http.ResponseWriter, health func() Health, readiness bool) {
	h := Health{State: "running", Ready: true}
	if health != nil {
		h = health()
	}
	w.Header().Set("Content-Type", "application/json")
	if readiness && !h.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(h)
}

// WriteMetrics renders the observer's registry in Prometheus text
// exposition format: counters and gauges as single samples, histograms
// as cumulative le-labeled buckets plus _sum and _count. Metric names
// are sanitized (dots → underscores) and namespaced under gbpol_.
func WriteMetrics(w io.Writer, o *obs.Obs) error {
	var snap obs.MetricsSnapshot
	if o != nil && o.Metrics != nil {
		snap = o.Metrics.Snapshot()
	}
	// gbpol_up pins the scrape alive even on an empty registry.
	if _, err := fmt.Fprintf(w, "# TYPE gbpol_up gauge\ngbpol_up 1\n"); err != nil {
		return err
	}
	if o != nil && o.Trace != nil {
		fmt.Fprintf(w, "# TYPE gbpol_trace_events gauge\ngbpol_trace_events %d\n", o.Trace.NumEvents())
	}
	for _, k := range sortedNames(snap.Counters) {
		name := promName(k)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, snap.Counters[k])
	}
	gnames := make([]string, 0, len(snap.Gauges))
	for k := range snap.Gauges {
		gnames = append(gnames, k)
	}
	sort.Strings(gnames)
	for _, k := range gnames {
		name := promName(k)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, snap.Gauges[k])
	}
	hnames := make([]string, 0, len(snap.Histograms))
	for k := range snap.Histograms {
		hnames = append(hnames, k)
	}
	sort.Strings(hnames)
	for _, k := range hnames {
		h := snap.Histograms[k]
		name := promName(k)
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.N
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b.Le, cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
		// Precomputed percentiles as labeled gauges, so dashboards get
		// p50/p95/p99 without re-deriving them from the bucket counts.
		fmt.Fprintf(w, "# TYPE %s_quantile gauge\n", name)
		fmt.Fprintf(w, "%s_quantile{q=\"0.5\"} %g\n", name, h.P50)
		fmt.Fprintf(w, "%s_quantile{q=\"0.95\"} %g\n", name, h.P95)
		if _, err := fmt.Fprintf(w, "%s_quantile{q=\"0.99\"} %g\n", name, h.P99); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a registry name ("net.heartbeat.rtt_us") onto the
// Prometheus grammar ("gbpol_net_heartbeat_rtt_us").
func promName(name string) string {
	var b strings.Builder
	b.WriteString("gbpol_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		// Digits are fine anywhere here: the gbpol_ prefix already
		// guarantees the name does not start with one.
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_',
			c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func sortedNames(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
