package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"gbpolar/internal/obs"
)

// streamFixture serves an observer with a little of everything the
// /events frame carries: metrics, a heartbeat RTT histogram, a flight
// ring mirroring the trace, and a verdicts source.
func streamFixture(t *testing.T, verdicts func() any) (*Server, *obs.Obs) {
	t.Helper()
	o := obs.New()
	o.AttachFlight(obs.NewFlightRecorder(64, t.TempDir()))
	o.Counter("net.frames.sent").Add(3)
	for i := int64(1); i <= 100; i++ {
		o.Histogram("net.heartbeat.rtt_us").Observe(i * 10)
	}
	sp := o.Begin(1, "phase", "epol", obs.NoVirtual)
	sp.End(obs.NoVirtual)
	s, err := StartWith("127.0.0.1:0", o, func() Health {
		return Health{State: "running", Ready: true, Size: 4, LiveRanks: 4}
	}, verdicts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, o
}

// Two sequential frames of one client: the first carries the span
// backlog, RTT quantiles, trimmed histograms and verdicts; the second
// only the spans recorded in between.
func TestEventsStream(t *testing.T) {
	s, o := streamFixture(t, func() any { return []string{"phase epol rank 1"} })

	resp, err := http.Get("http://" + s.Addr() + "/events?interval=60ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	readFrame := func() StreamFrame {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("stream ended early: %v", sc.Err())
		}
		var f StreamFrame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		return f
	}

	f1 := readFrame()
	if f1.Seq != 1 {
		t.Errorf("first frame seq = %d", f1.Seq)
	}
	if len(f1.Spans) != 1 || f1.Spans[0].Name != "epol" {
		t.Errorf("first frame spans = %+v, want the epol span", f1.Spans)
	}
	if f1.Health.LiveRanks != 4 {
		t.Errorf("health missing: %+v", f1.Health)
	}
	if f1.RTT == nil || f1.RTT.P95 <= f1.RTT.P50 || f1.RTT.P50 <= 0 {
		t.Errorf("rtt quantiles = %+v", f1.RTT)
	}
	h, ok := f1.Metrics.Histograms["net.heartbeat.rtt_us"]
	if !ok {
		t.Fatalf("histogram missing from frame metrics")
	}
	if len(h.Buckets) != 0 {
		t.Errorf("buckets not trimmed: %d", len(h.Buckets))
	}
	if f1.Verdicts == nil {
		t.Errorf("verdicts missing")
	}

	// New span between frames: only it should appear in the next window.
	sp := o.Begin(2, "phase", "push", obs.NoVirtual)
	sp.End(obs.NoVirtual)
	f2 := readFrame()
	if f2.Seq != 2 {
		t.Errorf("second frame seq = %d", f2.Seq)
	}
	found := false
	for _, ev := range f2.Spans {
		if ev.Name == "epol" {
			t.Errorf("second frame re-delivered the epol span")
		}
		if ev.Name == "push" {
			found = true
		}
	}
	if !found {
		t.Errorf("second frame missing the push span: %+v", f2.Spans)
	}
}

func TestEventsBadInterval(t *testing.T) {
	s, _ := streamFixture(t, nil)
	resp, err := http.Get("http://" + s.Addr() + "/events?interval=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad interval status = %d, want 400", resp.StatusCode)
	}
}

// Clients that vanish mid-stream must not leave handler goroutines (or
// write-after-close panics) behind, and concurrent /metrics scrapes must
// survive alongside the streams.
func TestEventsDisconnectLeak(t *testing.T) {
	s, _ := streamFixture(t, nil)
	base := "http://" + s.Addr()

	goroutines := func() int {
		runtime.GC()
		return runtime.NumGoroutine()
	}
	before := goroutines()

	const clients = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			req, _ := http.NewRequestWithContext(ctx, "GET", base+"/events?interval=50ms", nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				cancel()
				return
			}
			// Read one frame, then drop the connection mid-stream.
			buf := make([]byte, 256)
			resp.Body.Read(buf)
			cancel()
			resp.Body.Close()
		}()
	}
	// Concurrent scrapes while the streams churn.
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				code, body, _ := get(t, base+"/metrics")
				if code != http.StatusOK || !strings.Contains(body, "gbpol_up 1") {
					t.Errorf("/metrics during streams = %d", code)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Drop the client side's pooled keep-alive connections so only
	// server-side leaks would remain visible.
	http.DefaultClient.CloseIdleConnections()

	// All handler goroutines must drain once the clients are gone.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if goroutines() <= before {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines after disconnects: %d, want <= %d", goroutines(), before)
}

// The quantile satellite: /metrics must carry p50/p95/p99 gauges per
// histogram.
func TestMetricsQuantileGauges(t *testing.T) {
	s, _ := streamFixture(t, nil)
	code, body, _ := get(t, "http://"+s.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE gbpol_net_heartbeat_rtt_us_quantile gauge",
		`gbpol_net_heartbeat_rtt_us_quantile{q="0.5"}`,
		`gbpol_net_heartbeat_rtt_us_quantile{q="0.95"}`,
		`gbpol_net_heartbeat_rtt_us_quantile{q="0.99"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
	// The rendered quantiles must be ordered and inside the observed range.
	var p50, p99 float64
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, `gbpol_net_heartbeat_rtt_us_quantile{q="0.5"}`) {
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &p50)
		}
		if strings.HasPrefix(line, `gbpol_net_heartbeat_rtt_us_quantile{q="0.99"}`) {
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &p99)
		}
	}
	if !(p50 > 0 && p99 >= p50 && p99 <= 2048) {
		t.Fatalf("quantile values p50=%v p99=%v out of range", p50, p99)
	}
}
