package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the metrics registry: named counters, gauges and
// power-of-two histograms. Handles are resolved once (a locked map
// lookup) and then updated lock- and allocation-free with atomics, so
// sched workers and cluster ranks can hammer them concurrently; the
// race tests in metrics_test.go pin that down. Every update method is
// nil-safe, so a disabled registry costs one branch at the call site.

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by 1 (no-op on nil).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v (no-op on nil).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the fixed bucket count: bucket i counts observations v
// with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). Bucket 0 holds
// v ≤ 0. Fixed-size arrays keep Observe allocation-free.
const histBuckets = 65

// Histogram counts int64 observations in power-of-two buckets and
// tracks count, sum and max — enough for batch-size and latency
// distributions without per-observation allocation.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records v (no-op on nil). Negative values clamp to bucket 0.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v))
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// absorb folds a shipped delta from another process's histogram into
// this one: bucket counts, count and sum add; max folds by CAS (it ships
// as an absolute value, so re-absorbing is idempotent).
func (h *Histogram) absorb(d *HistogramDelta) {
	if h == nil {
		return
	}
	for _, b := range d.Buckets {
		if int(b.Idx) < histBuckets {
			h.buckets[b.Idx].Add(b.N)
		}
	}
	h.count.Add(d.Count)
	h.sum.Add(d.Sum)
	for {
		cur := h.max.Load()
		if d.Max <= cur || h.max.CompareAndSwap(cur, d.Max) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the observation total (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observation (0 on nil or empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Mean returns sum/count (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Bucket is one populated histogram bucket: N observations with
// value ≤ Le (upper bound 2^i − 1; Le 0 holds v ≤ 0).
type Bucket struct {
	Le int64 `json:"le"`
	N  int64 `json:"n"`
}

// Snapshot returns the populated buckets in ascending order.
func (h *Histogram) Snapshot() []Bucket {
	if h == nil {
		return nil
	}
	var out []Bucket
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		le := int64(0)
		if i > 0 && i < 64 {
			le = (int64(1) << i) - 1
		} else if i >= 64 {
			le = math.MaxInt64
		}
		out = append(out, Bucket{Le: le, N: n})
	}
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) of the observations
// from the power-of-two buckets: the target rank's bucket is found by
// cumulative count and the value linearly interpolated between the
// bucket's bounds. The estimate is exact for q at bucket boundaries and
// within a factor of 2 elsewhere — the bucket resolution. Returns 0 on a
// nil or empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return quantileFromBuckets(h.Snapshot(), h.Count(), q)
}

// Quantile estimates the q-quantile from a snapshot (see
// Histogram.Quantile).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	return quantileFromBuckets(s.Buckets, s.Count, q)
}

func quantileFromBuckets(buckets []Bucket, count int64, q float64) float64 {
	if count == 0 || len(buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := q * float64(count)
	if target < 1 {
		target = 1
	}
	cum := 0.0
	for _, b := range buckets {
		prev := cum
		cum += float64(b.N)
		if cum+1e-12 < target {
			continue
		}
		if b.Le <= 0 {
			return 0
		}
		// Bucket b holds values in [ (Le+1)/2, Le ].
		lo := float64(b.Le+1) / 2
		hi := float64(b.Le)
		frac := (target - prev) / float64(b.N)
		return lo + frac*(hi-lo)
	}
	last := buckets[len(buckets)-1]
	return float64(last.Le)
}

// Registry resolves metric names to handles. All methods are nil-safe
// and return nil handles on a nil registry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is the JSON form of one histogram. P50/P95/P99 are
// bucket-interpolated quantile estimates (see Histogram.Quantile), so
// batch-size and latency distributions are readable straight from the
// JSON without post-processing the buckets.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Max     int64    `json:"max"`
	Mean    float64  `json:"mean"`
	P50     float64  `json:"p50"`
	P95     float64  `json:"p95"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// MetricsSnapshot is a point-in-time copy of the whole registry.
type MetricsSnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, c := range counters {
		snap.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		snap.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		hs := HistogramSnapshot{
			Count: h.Count(), Sum: h.Sum(), Max: h.Max(), Mean: h.Mean(),
			Buckets: h.Snapshot(),
		}
		hs.P50 = hs.Quantile(0.50)
		hs.P95 = hs.Quantile(0.95)
		hs.P99 = hs.Quantile(0.99)
		snap.Histograms[k] = hs
	}
	return snap
}

// WriteJSON emits the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Fprint writes a sorted human-readable metric table.
func (r *Registry) Fprint(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	bw := bufio.NewWriter(w)
	names := make([]string, 0, len(snap.Counters))
	for k := range snap.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(bw, "%-36s %d\n", k, snap.Counters[k])
	}
	names = names[:0]
	for k := range snap.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(bw, "%-36s %g\n", k, snap.Gauges[k])
	}
	names = names[:0]
	for k := range snap.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := snap.Histograms[k]
		fmt.Fprintf(bw, "%-36s count=%d mean=%.1f p50=%.0f p95=%.0f p99=%.0f max=%d\n",
			k, h.Count, h.Mean, h.P50, h.P95, h.P99, h.Max)
	}
	return bw.Flush()
}
