package obs

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// The sampler must populate the runtime gauges, publish open-phase span
// ages, zero them once the span closes, and leave no goroutine behind
// after Stop.
func TestHealthSamplerGaugesAndOpenSpans(t *testing.T) {
	o := New()
	base := runtime.NumGoroutine()

	sp := o.Begin(2, "phase", "epol", NoVirtual)
	s := StartHealthSampler(o, time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if o.Gauge("health.open.phase.epol_us").Value() > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := o.Gauge("health.open.phase.epol_us").Value(); got <= 0 {
		t.Fatalf("open-span gauge not published: %v", got)
	}
	if o.Gauge("health.heap_bytes").Value() <= 0 {
		t.Error("health.heap_bytes not sampled")
	}
	if o.Gauge("health.goroutines").Value() <= 0 {
		t.Error("health.goroutines not sampled")
	}

	sp.End(NoVirtual)
	for time.Now().Before(deadline) {
		if o.Gauge("health.open.phase.epol_us").Value() == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := o.Gauge("health.open.phase.epol_us").Value(); got != 0 {
		t.Errorf("open-span gauge not zeroed after span end: %v", got)
	}

	s.Stop()
	s.Stop() // idempotent

	// Goroutine restored (allow unrelated runtime churn a moment).
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Errorf("sampler leaked goroutines: %d > %d", n, base)
	}
}

// A disabled observer must yield a nil sampler whose Stop is a no-op.
func TestHealthSamplerDisabled(t *testing.T) {
	var o *Obs
	s := StartHealthSampler(o, time.Millisecond)
	if s != nil {
		t.Fatalf("sampler on disabled observer: %v", s)
	}
	s.Stop() // must not panic
}

// Health gauges must survive the telemetry round trip rank-prefixed, so
// the coordinator can attribute them.
func TestHealthGaugesShipViaTelemetry(t *testing.T) {
	worker := New()
	sp := worker.Begin(1, "phase", "epol", NoVirtual)
	s := StartHealthSampler(worker, time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if worker.Gauge("health.open.phase.epol_us").Value() > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	sp.End(NoVirtual)

	frame := worker.NewShipper().Collect()
	if frame == nil {
		t.Fatal("nothing to ship")
	}
	tl, err := DecodeTelemetry(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	coord := New()
	coord.Absorb(tl, 1, 0)
	snap := coord.Metrics.Snapshot()
	found := false
	for name := range snap.Gauges {
		if strings.HasPrefix(name, "rank1.health.") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no rank1.health.* gauge after absorb; gauges: %v", snap.Gauges)
	}
}

func TestTraceOpenSpans(t *testing.T) {
	o := New()
	sp := o.Begin(3, "phase", "born", NoVirtual)
	time.Sleep(2 * time.Millisecond)
	open := o.Trace.OpenSpans()
	if len(open) != 1 {
		t.Fatalf("open spans = %d, want 1", len(open))
	}
	ev := open[0]
	if ev.Name != "born" || ev.Cat != "phase" || ev.Rank != 3 || ev.Ph != "X" {
		t.Errorf("unexpected open span: %+v", ev)
	}
	if ev.WallDurUS < 1000 {
		t.Errorf("open span age %v us, want >= 1000", ev.WallDurUS)
	}
	if ev.Args["truncated"] != 1 {
		t.Errorf("open span missing truncated marker: %v", ev.Args)
	}
	sp.End(NoVirtual)
	if n := len(o.Trace.OpenSpans()); n != 0 {
		t.Errorf("open spans after End = %d, want 0", n)
	}

	var nilTrace *Trace
	if nilTrace.OpenSpans() != nil {
		t.Error("nil trace OpenSpans should be nil")
	}
}

func TestFlightEventsSince(t *testing.T) {
	f := NewFlightRecorder(4, t.TempDir())
	var cur uint64
	evs, cur := f.EventsSince(cur)
	if len(evs) != 0 {
		t.Fatalf("events before any record: %d", len(evs))
	}
	for i := 0; i < 3; i++ {
		f.Record(Event{Name: "a", WallUS: float64(i)})
	}
	evs, cur = f.EventsSince(cur)
	if len(evs) != 3 {
		t.Fatalf("first window = %d events, want 3", len(evs))
	}
	// No new events: empty window, cursor stable.
	evs, cur2 := f.EventsSince(cur)
	if len(evs) != 0 || cur2 != cur {
		t.Fatalf("idle window = %d events, cursor %d -> %d", len(evs), cur, cur2)
	}
	// Overflow the ring: client skips forward to the oldest survivor.
	for i := 0; i < 10; i++ {
		f.Record(Event{Name: "b", WallUS: float64(100 + i)})
	}
	evs, _ = f.EventsSince(cur)
	if len(evs) != 4 {
		t.Fatalf("post-overflow window = %d events, want ring size 4", len(evs))
	}
	if evs[0].WallUS != 106 {
		t.Errorf("oldest survivor WallUS = %v, want 106", evs[0].WallUS)
	}

	var nilF *FlightRecorder
	evs, c := nilF.EventsSince(7)
	if evs != nil || c != 7 {
		t.Errorf("nil recorder EventsSince = %v, %d", evs, c)
	}
}
