// Package watch is the coordinator's anomaly watchdog: a single ticker
// goroutine that re-analyzes the merged run timeline on every window,
// compares the per-phase imbalance stats against a baseline's tolerance
// envelopes through the perf-gate machinery (internal/bench/gate), and
// raises a verdict when a stat stays outside its envelope for Sustain
// consecutive windows. One sustained breach means a specific phase on a
// specific rank is running hot relative to the recorded nominal shape —
// the live-cluster analogue of a failed `gbbench -compare`.
//
// The trace alone cannot see a straggler mid-phase: telemetry ships only
// closed spans, so a remote rank stuck inside epol contributes nothing
// to the merged timeline until it finishes — exactly when detection is
// too late. The health sampler closes that gap by publishing open-span
// age gauges (health.open.phase.<name>_us) which arrive rank-prefixed
// with every telemetry frame; the watchdog overlays those ages onto each
// rank's closed wall sums before computing imbalance, so the envelope is
// judged against where every rank is *now*. See DESIGN.md §14.
package watch

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"time"

	"gbpolar/internal/bench/gate"
	"gbpolar/internal/obs"
	"gbpolar/internal/obs/analyze"
)

// Config shapes a watchdog.
type Config struct {
	// Baseline holds the nominal per-stat envelopes (typically
	// results/baseline.json via gate.ReadBaseline). Only the
	// phase.<name>.wall_imbalance / .virt_imbalance stats are watched —
	// the live analogues of the offline gate's imbalance rows. Required.
	Baseline *gate.Baseline
	// Window is the evaluation cadence (<= 0: DefaultWindow).
	Window time.Duration
	// Sustain is how many consecutive breaching windows arm a verdict
	// (<= 0: DefaultSustain). Values below 2 admit one-window blips —
	// scheduler noise, a stale open-span gauge between sampler ticks.
	Sustain int
	// MinPhaseWallUS excludes micro-phases: a phase is judged only once
	// its slowest rank has accumulated this much wall time (<= 0:
	// DefaultMinPhaseWallUS). Imbalance on microsecond-long spans is
	// dominated by scheduler jitter, not by computation skew.
	MinPhaseWallUS float64
	// OnAnomaly, when non-nil, runs synchronously on the watchdog
	// goroutine for each verdict — the coordinator uses it to dump the
	// flight recorder tagged with the offending phase and rank.
	OnAnomaly func(Verdict)
}

// Defaults for Config zero values.
const (
	DefaultWindow         = 250 * time.Millisecond
	DefaultSustain        = 3
	DefaultMinPhaseWallUS = 25_000
)

// Verdict is one sustained anomaly.
type Verdict struct {
	// Stat is the breached gate stat (e.g. "phase.epol.wall_imbalance").
	Stat string `json:"stat"`
	// Phase and Rank localize the anomaly: the phase the stat tracks and
	// the rank carrying the maximum overlaid wall time when it fired.
	Phase string `json:"phase"`
	Rank  int    `json:"rank"`
	// Base/Cur/TolPct mirror the gate row that breached: baseline
	// median, live value, allowed relative tolerance.
	Base     float64 `json:"base"`
	Cur      float64 `json:"cur"`
	DeltaPct float64 `json:"delta_pct"`
	TolPct   float64 `json:"tol_pct"`
	// Windows is the sustained breach length, in evaluation windows.
	Windows int `json:"windows"`
	// WallMS is when the verdict fired, on the coordinator's trace clock.
	WallMS float64 `json:"wall_ms"`
}

func (v Verdict) String() string {
	return fmt.Sprintf("%s rank %d: %s %.3f vs baseline %.3f (%+.1f%% > tol %.1f%%, %d windows)",
		v.Phase, v.Rank, v.Stat, v.Cur, v.Base, v.DeltaPct, v.TolPct, v.Windows)
}

// Watchdog is a running anomaly monitor. Start one per coordinator.
type Watchdog struct {
	o   *obs.Obs
	cfg Config

	stop chan struct{}
	done chan struct{}

	mu       sync.Mutex
	streaks  map[string]int
	fired    map[string]bool
	verdicts []Verdict

	// gaugeSeen tracks each overlay gauge's last value and how many
	// consecutive evaluations it has been frozen — the staleness filter
	// (only the watchdog goroutine touches it).
	gaugeSeen map[string]*gaugeState
	// phaseTotal remembers each phase's overlaid wall sum from the
	// previous evaluation — the activity guard (watchdog goroutine only).
	phaseTotal map[string]float64
}

type gaugeState struct {
	val       float64
	unchanged int
}

// staleAfterEvals is how many consecutive unchanged evaluations mark an
// overlay gauge stale. A genuinely stuck rank's open-span age grows with
// every sampler tick, so its gauge keeps changing; a gauge frozen this
// long belongs to a span that already closed (the zeroing sample lost a
// race with the worker's last telemetry flush) and must not be overlaid.
// Two evals of slack tolerate a sampler cadence up to ~2× the window.
const staleAfterEvals = 2

// openGaugeRE matches the rank-prefixed open-span age gauges absorbed
// from worker telemetry: rank<r>.health.open.phase.<name>_us.
var openGaugeRE = regexp.MustCompile(`^rank(\d+)\.health\.open\.phase\.(.+)_us$`)

// Start launches the watchdog against the coordinator's observer.
// Returns nil (Stop-safe) when the observer is disabled or no baseline
// was given — watching nothing is not an error, it is the obs-off path.
func Start(o *obs.Obs, cfg Config) *Watchdog {
	if !o.Enabled() || cfg.Baseline == nil {
		return nil
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.Sustain <= 0 {
		cfg.Sustain = DefaultSustain
	}
	if cfg.MinPhaseWallUS <= 0 {
		cfg.MinPhaseWallUS = DefaultMinPhaseWallUS
	}
	w := &Watchdog{
		o:          o,
		cfg:        cfg,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		streaks:    map[string]int{},
		fired:      map[string]bool{},
		gaugeSeen:  map[string]*gaugeState{},
		phaseTotal: map[string]float64{},
	}
	go w.loop()
	return w
}

func (w *Watchdog) loop() {
	defer close(w.done)
	tick := time.NewTicker(w.cfg.Window)
	defer tick.Stop()
	for {
		select {
		case <-w.stop:
			w.evaluate() // final pass so a breach at teardown still lands
			return
		case <-tick.C:
			w.evaluate()
		}
	}
}

// Stop halts the watchdog after one final evaluation and blocks until
// its goroutine exits. Idempotent and nil-safe.
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	<-w.done
}

// Anomalous reports whether any verdict has fired. Nil-safe.
func (w *Watchdog) Anomalous() bool {
	if w == nil {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.verdicts) > 0
}

// Verdicts returns a copy of the verdicts fired so far, oldest first.
// Nil-safe.
func (w *Watchdog) Verdicts() []Verdict {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Verdict(nil), w.verdicts...)
}

// evaluate runs one watchdog window: overlay, summarize, compare, count.
func (w *Watchdog) evaluate() {
	rep := analyze.Analyze(w.o.Trace.Events())
	open := w.openOverlay()
	ranks := map[int]bool{}
	for _, rs := range rep.Ranks {
		ranks[rs.Rank] = true
	}

	// Live stats for the watched subset, plus the offending rank per stat.
	stats := map[string]gate.Stat{}
	rankOf := map[string]int{}
	phaseOf := map[string]string{}
	for _, p := range rep.Phases {
		per := map[int]float64{}
		for r, us := range p.PerRankWallUS {
			per[r] = us
		}
		for r, age := range open[p.Name] {
			per[r] += age
		}
		// Judge a phase only once every known rank has contributed to it
		// (a closed span, a truncated local one, or a live open-span
		// gauge). Worker spans arrive via telemetry with flush-interval
		// lag, so right after the coordinator's own span lands the phase
		// looks wildly imbalanced — absence of data, not an anomaly.
		if len(per) < len(ranks) {
			continue
		}
		// Judge a phase only while its data is still moving: a phase whose
		// overlaid wall sum is identical to the previous evaluation has
		// finished (or its telemetry has gone quiet) — its final shape is
		// the offline perf gate's jurisdiction, not a live anomaly. This
		// keeps one-shot startup phases (born, build) from sustaining a
		// breach forever on real runs, where rank 0 computes them while the
		// workers are still joining and the skew freezes into history; a
		// genuinely dragging phase keeps growing every window, through
		// closed spans or the straggler's open-span age gauge. Streaks are
		// preserved across skipped windows, so a breach that resumes
		// growing continues its count rather than restarting.
		var total float64
		for _, us := range per {
			total += us
		}
		if prev, seen := w.phaseTotal[p.Name]; seen && total == prev {
			continue
		}
		w.phaseTotal[p.Name] = total
		maxUS, maxRank, mean := axis(per)
		if maxUS < w.cfg.MinPhaseWallUS || mean <= 0 {
			continue
		}
		key := "phase." + p.Name + ".wall_imbalance"
		stats[key] = gate.Stat{Median: maxUS / mean}
		rankOf[key] = maxRank
		phaseOf[key] = p.Name
		if p.HasVirt && p.Virt.MeanUS > 0 {
			vkey := "phase." + p.Name + ".virt_imbalance"
			stats[vkey] = gate.Stat{Median: p.Virt.Imbalance}
			rankOf[vkey] = p.Virt.MaxRank
			phaseOf[vkey] = p.Name
		}
	}

	// Compare only the stats both sides know: the baseline may carry a
	// richer workload (build stats, collectives) and the live run may
	// have phases the baseline never saw — neither is an anomaly.
	base := &gate.Baseline{Stats: map[string]gate.Stat{}}
	cur := &gate.Baseline{Stats: stats}
	for k := range stats {
		if bs, ok := w.cfg.Baseline.Stats[k]; ok {
			base.Stats[k] = bs
		} else {
			delete(cur.Stats, k)
		}
	}
	rows, _ := gate.Compare(base, cur)

	w.mu.Lock()
	var fired []Verdict
	for _, row := range rows {
		if row.Status != "REGRESSED" {
			w.streaks[row.Stat] = 0
			continue
		}
		w.streaks[row.Stat]++
		if w.streaks[row.Stat] < w.cfg.Sustain || w.fired[row.Stat] {
			continue
		}
		w.fired[row.Stat] = true
		v := Verdict{
			Stat:  row.Stat,
			Phase: phaseOf[row.Stat],
			Rank:  rankOf[row.Stat],
			Base:  row.Base, Cur: row.Cur,
			DeltaPct: row.DeltaPct, TolPct: row.TolPct,
			Windows: w.streaks[row.Stat],
			WallMS:  w.o.Trace.NowUS() / 1e3,
		}
		w.verdicts = append(w.verdicts, v)
		fired = append(fired, v)
	}
	w.mu.Unlock()

	// Side effects outside the lock: the callback may dump the flight
	// recorder or poke the health endpoint, neither of which should
	// serialize against Verdicts readers.
	for _, v := range fired {
		w.o.Counter("watch.anomalies").Inc()
		w.o.Instant(v.Rank, "watch", "watch.anomaly", obs.NoVirtual,
			obs.F("rank", float64(v.Rank)),
			obs.F("cur", v.Cur), obs.F("base", v.Base))
		if w.cfg.OnAnomaly != nil {
			w.cfg.OnAnomaly(v)
		}
	}
}

// openOverlay reads the rank-prefixed open-span age gauges shipped by
// worker health samplers: phase name → rank → open span age (µs). Local
// open spans are not included — Trace.Events already exports them as
// truncated spans, so overlaying them too would double-count. A gauge
// frozen for staleAfterEvals consecutive evaluations is dropped: a live
// straggler's age grows every sampler tick, while a frozen positive age
// is the ghost of a span that closed after the worker's last flush.
func (w *Watchdog) openOverlay() map[string]map[int]float64 {
	out := map[string]map[int]float64{}
	if w.o.Metrics == nil {
		return out
	}
	snap := w.o.Metrics.Snapshot()
	for name, v := range snap.Gauges {
		m := openGaugeRE.FindStringSubmatch(name)
		if m == nil {
			continue
		}
		g := w.gaugeSeen[name]
		switch {
		case g == nil:
			g = &gaugeState{val: v}
			w.gaugeSeen[name] = g
		case v != g.val:
			g.val, g.unchanged = v, 0
		default:
			g.unchanged++
		}
		if v <= 0 || g.unchanged >= staleAfterEvals {
			continue
		}
		rank, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		phase := m[2]
		if out[phase] == nil {
			out[phase] = map[int]float64{}
		}
		out[phase][rank] = v
	}
	return out
}

// axis reduces a per-rank wall map to (max, argmax, mean).
func axis(per map[int]float64) (maxUS float64, maxRank int, mean float64) {
	if len(per) == 0 {
		return 0, 0, 0
	}
	maxUS = math.Inf(-1)
	var sum float64
	for r, us := range per {
		sum += us
		if us > maxUS || (us == maxUS && r < maxRank) {
			maxUS, maxRank = us, r
		}
	}
	return maxUS, maxRank, sum / float64(len(per))
}

// BaselineFromSummary builds an in-memory baseline from one run's
// analyzer summary — the shape `gbtrace`-style tooling and tests use
// when no results/baseline.json fits the live workload. Spread is zero,
// so gate.Tolerance falls back to the per-class floors.
func BaselineFromSummary(summary map[string]float64) *gate.Baseline {
	b := &gate.Baseline{Schema: gate.Schema, Stats: map[string]gate.Stat{}}
	for k, v := range summary {
		if strings.Contains(k, "imbalance") {
			b.Stats[k] = gate.Stat{Median: v}
		}
	}
	return b
}
