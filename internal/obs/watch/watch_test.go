package watch

import (
	"testing"
	"time"

	"gbpolar/internal/bench/gate"
	"gbpolar/internal/obs"
)

func phaseEv(rank int, name string, durUS float64) obs.Event {
	return obs.Event{Name: name, Cat: "phase", Ph: "X", Rank: rank, WallDurUS: durUS}
}

func testBaseline() *gate.Baseline {
	return &gate.Baseline{Schema: gate.Schema, Stats: map[string]gate.Stat{
		"phase.epol.wall_imbalance":  {Median: 1.05},
		"phase.build.wall_imbalance": {Median: 1.0},
	}}
}

// newTestWatchdog builds a watchdog without the ticker goroutine so
// tests drive evaluate deterministically.
func newTestWatchdog(o *obs.Obs, cfg Config) *Watchdog {
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.Sustain <= 0 {
		cfg.Sustain = DefaultSustain
	}
	if cfg.MinPhaseWallUS <= 0 {
		cfg.MinPhaseWallUS = DefaultMinPhaseWallUS
	}
	return &Watchdog{
		o: o, cfg: cfg,
		stop: make(chan struct{}), done: make(chan struct{}),
		streaks: map[string]int{}, fired: map[string]bool{},
		gaugeSeen:  map[string]*gaugeState{},
		phaseTotal: map[string]float64{},
	}
}

// A balanced run must produce zero verdicts no matter how many windows
// pass — even as balanced rounds keep accumulating.
func TestWatchdogNominal(t *testing.T) {
	o := obs.New()
	for r := 0; r < 4; r++ {
		o.Trace.Adopt(phaseEv(r, "epol", 70_000))
	}
	w := newTestWatchdog(o, Config{Baseline: testBaseline()})
	for i := 0; i < 10; i++ {
		w.evaluate()
		for r := 0; r < 4; r++ { // another balanced round closes
			o.Trace.Adopt(phaseEv(r, "epol", 70_000))
		}
	}
	if w.Anomalous() || len(w.Verdicts()) != 0 {
		t.Fatalf("nominal run flagged: %+v", w.Verdicts())
	}
}

// A 2× slowdown on one rank must yield exactly one verdict naming the
// phase and rank, after exactly Sustain windows, and never a duplicate.
func TestWatchdogSustainedBreach(t *testing.T) {
	o := obs.New()
	for r := 0; r < 4; r++ {
		dur := 70_000.0
		if r == 1 {
			dur = 140_000 // λ = 140/87.5 = 1.6 > 1.05 × 1.30
		}
		o.Trace.Adopt(phaseEv(r, "epol", dur))
	}
	var cb []Verdict
	w := newTestWatchdog(o, Config{
		Baseline: testBaseline(),
		Sustain:  3,
		OnAnomaly: func(v Verdict) {
			cb = append(cb, v)
		},
	})
	// The dragging rank keeps accumulating between windows — the activity
	// guard requires movement for a phase to stay in scope.
	w.evaluate()
	o.Trace.Adopt(phaseEv(1, "epol", 10_000))
	w.evaluate()
	if w.Anomalous() {
		t.Fatalf("verdict before Sustain windows")
	}
	o.Trace.Adopt(phaseEv(1, "epol", 10_000))
	w.evaluate()
	vs := w.Verdicts()
	if len(vs) != 1 {
		t.Fatalf("verdicts = %+v, want exactly 1", vs)
	}
	v := vs[0]
	if v.Phase != "epol" || v.Rank != 1 || v.Stat != "phase.epol.wall_imbalance" {
		t.Errorf("verdict localization wrong: %+v", v)
	}
	if v.Windows != 3 {
		t.Errorf("verdict windows = %d, want 3", v.Windows)
	}
	if len(cb) != 1 || cb[0].Rank != 1 {
		t.Errorf("OnAnomaly calls = %+v", cb)
	}

	// More breaching windows must not re-fire the same stat.
	o.Trace.Adopt(phaseEv(1, "epol", 10_000))
	w.evaluate()
	o.Trace.Adopt(phaseEv(1, "epol", 10_000))
	w.evaluate()
	if n := len(w.Verdicts()); n != 1 {
		t.Errorf("verdicts after re-evaluation = %d, want 1", n)
	}
	if got := o.Counter("watch.anomalies").Value(); got != 1 {
		t.Errorf("watch.anomalies = %d, want 1", got)
	}
	// The verdict also lands in the trace as an instant.
	found := false
	for _, ev := range o.Trace.Events() {
		if ev.Cat == "watch" && ev.Name == "watch.anomaly" && ev.Rank == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("watch.anomaly instant missing from trace")
	}
}

// A rank stuck mid-phase is only visible through its shipped open-span
// age gauge; the watchdog must overlay it onto the closed walls.
func TestWatchdogOpenGaugeOverlay(t *testing.T) {
	o := obs.New()
	for r := 0; r < 4; r++ {
		o.Trace.Adopt(phaseEv(r, "epol", 70_000))
	}
	// Rank 2 is 80ms deep into a second epol span it has not closed; the
	// age keeps growing with every sampler tick, which is also what keeps
	// the phase "active" for the watchdog.
	o.Gauge("rank2.health.open.phase.epol_us").Set(80_000)
	w := newTestWatchdog(o, Config{Baseline: testBaseline(), Sustain: 2})
	w.evaluate()
	o.Gauge("rank2.health.open.phase.epol_us").Set(95_000)
	w.evaluate()
	vs := w.Verdicts()
	if len(vs) != 1 || vs[0].Rank != 2 || vs[0].Phase != "epol" {
		t.Fatalf("overlay verdict = %+v, want epol rank 2", vs)
	}
	// λ = 165/93.75 = 1.76
	if vs[0].Cur < 1.7 || vs[0].Cur > 1.8 {
		t.Errorf("overlaid imbalance = %v, want ≈1.76", vs[0].Cur)
	}
}

// A frozen open-span gauge is a ghost (the span closed but the zeroing
// sample lost the race with the worker's last flush): it may inflate at
// most staleAfterEvals windows, fewer than Sustain, so no verdict.
func TestWatchdogStaleGaugeIgnored(t *testing.T) {
	o := obs.New()
	for r := 0; r < 4; r++ {
		o.Trace.Adopt(phaseEv(r, "epol", 70_000))
	}
	o.Gauge("rank3.health.open.phase.epol_us").Set(80_000) // never changes again
	w := newTestWatchdog(o, Config{Baseline: testBaseline(), Sustain: 3})
	for i := 0; i < 8; i++ {
		w.evaluate()
	}
	if w.Anomalous() {
		t.Fatalf("stale gauge produced a verdict: %+v", w.Verdicts())
	}
}

// A phase is not judged until every known rank has contributed: worker
// spans lag behind the coordinator's own by a telemetry flush, and that
// absence must read as "no data yet", not imbalance.
func TestWatchdogPartialArrival(t *testing.T) {
	o := obs.New()
	// Rank 1..3 are known (they have born spans) but only rank 0's epol
	// span has arrived so far — epol looks infinitely imbalanced.
	for r := 0; r < 4; r++ {
		o.Trace.Adopt(phaseEv(r, "born", 1_000))
	}
	o.Trace.Adopt(phaseEv(0, "epol", 200_000))
	w := newTestWatchdog(o, Config{Baseline: testBaseline(), Sustain: 1})
	for i := 0; i < 5; i++ {
		w.evaluate()
	}
	if w.Anomalous() {
		t.Fatalf("partial arrival flagged: %+v", w.Verdicts())
	}
	// Once the rest arrive balanced, still quiet.
	for r := 1; r < 4; r++ {
		o.Trace.Adopt(phaseEv(r, "epol", 200_000))
	}
	w.evaluate()
	if w.Anomalous() {
		t.Fatalf("balanced arrival flagged: %+v", w.Verdicts())
	}
}

// A one-shot startup phase whose skew froze into history must never
// sustain a breach: rank 0 computes born while the workers are still
// joining, the workers' spans arrive, and then the phase stops moving —
// the activity guard caps its breach streak below Sustain no matter how
// many windows pass.
func TestWatchdogFrozenPhaseNeverSustains(t *testing.T) {
	o := obs.New()
	// Heavily imbalanced born: rank 0 took 4× the others, all ranks
	// present (coverage satisfied), well over MinPhaseWall.
	o.Trace.Adopt(phaseEv(0, "build", 200_000))
	for r := 1; r < 4; r++ {
		o.Trace.Adopt(phaseEv(r, "build", 50_000))
	}
	w := newTestWatchdog(o, Config{Baseline: testBaseline(), Sustain: 3})
	for i := 0; i < 20; i++ {
		w.evaluate()
	}
	if w.Anomalous() {
		t.Fatalf("frozen startup phase sustained a verdict: %+v", w.Verdicts())
	}
	// The same shape that RESUMES dragging does fire: growth re-enters
	// the phase into scope and the streak continues.
	for i := 0; i < 3; i++ {
		o.Trace.Adopt(phaseEv(0, "build", 50_000))
		w.evaluate()
	}
	if !w.Anomalous() {
		t.Fatal("resumed drag never fired")
	}
}

// Micro-phases stay out of scope: huge imbalance on a 2ms phase is
// scheduler noise, not an anomaly.
func TestWatchdogMinPhaseWall(t *testing.T) {
	o := obs.New()
	o.Trace.Adopt(phaseEv(0, "build", 2_000))
	o.Trace.Adopt(phaseEv(1, "build", 100))
	o.Trace.Adopt(phaseEv(2, "build", 100))
	o.Trace.Adopt(phaseEv(3, "build", 100))
	w := newTestWatchdog(o, Config{Baseline: testBaseline(), Sustain: 1})
	for i := 0; i < 5; i++ {
		w.evaluate()
	}
	if w.Anomalous() {
		t.Fatalf("micro-phase flagged: %+v", w.Verdicts())
	}
}

// The full lifecycle through Start/Stop: the ticker loop must fire the
// verdict on its own, and Stop must be idempotent and leak-free.
func TestWatchdogStartStop(t *testing.T) {
	o := obs.New()
	for r := 0; r < 4; r++ {
		dur := 70_000.0
		if r == 3 {
			dur = 200_000
		}
		o.Trace.Adopt(phaseEv(r, "epol", dur))
	}
	got := make(chan Verdict, 1)
	// Keep the dragging phase growing so the activity guard sees live
	// data, the way a real straggler's spans and age gauges would.
	feedStop := make(chan struct{})
	defer close(feedStop)
	go func() {
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-feedStop:
				return
			case <-tick.C:
				o.Trace.Adopt(phaseEv(3, "epol", 5_000))
			}
		}
	}()
	w := Start(o, Config{
		Baseline: testBaseline(),
		Window:   2 * time.Millisecond,
		Sustain:  3,
		OnAnomaly: func(v Verdict) {
			select {
			case got <- v:
			default:
			}
		},
	})
	select {
	case v := <-got:
		if v.Rank != 3 || v.Phase != "epol" {
			t.Errorf("live verdict = %+v", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never fired")
	}
	w.Stop()
	w.Stop()

	// Disabled paths: nil observer or missing baseline watch nothing.
	if Start(nil, Config{Baseline: testBaseline()}) != nil {
		t.Error("watchdog on disabled observer")
	}
	if Start(o, Config{}) != nil {
		t.Error("watchdog without baseline")
	}
	var nilW *Watchdog
	nilW.Stop()
	if nilW.Anomalous() || nilW.Verdicts() != nil {
		t.Error("nil watchdog not inert")
	}
}

func TestBaselineFromSummary(t *testing.T) {
	b := BaselineFromSummary(map[string]float64{
		"phase.epol.wall_imbalance": 1.1,
		"phase.epol.wall_ms":        70,
		"makespan.wall_ms":          300,
	})
	if len(b.Stats) != 1 {
		t.Fatalf("stats = %+v, want only the imbalance", b.Stats)
	}
	if got := b.Stats["phase.epol.wall_imbalance"].Median; got != 1.1 {
		t.Fatalf("median = %v", got)
	}
}
