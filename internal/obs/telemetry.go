package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"gbpolar/internal/wire"
)

// This file is the wire side of the distributed observability plane: a
// compact binary batch ("telemetry frame") of trace events plus metric
// deltas that a worker process ships to the coordinator, and the
// coordinator folds into its own observer. Encoding is the repo's
// bounds-checked little-endian wire format, so truncated or corrupted
// frames fail with a typed error instead of panicking or over-allocating
// (the same property the snapshot codec pins). See DESIGN.md §13.

// telemetryVersion is bumped on any incompatible layout change.
const telemetryVersion = 1

// CounterDelta is one counter's increment since the previous batch.
type CounterDelta struct {
	Name  string
	Delta int64
}

// GaugeValue is one gauge's current value (gauges are last-write-wins,
// so absolute values ship, not deltas).
type GaugeValue struct {
	Name  string
	Value float64
}

// BucketDelta is one histogram bucket's count increment. Idx is the
// power-of-two bucket index (see histBuckets).
type BucketDelta struct {
	Idx uint8
	N   int64
}

// HistogramDelta is one histogram's growth since the previous batch:
// per-bucket count deltas plus count/sum deltas and the absolute max
// (max folds idempotently via compare-and-swap).
type HistogramDelta struct {
	Name    string
	Count   int64
	Sum     int64
	Max     int64
	Buckets []BucketDelta
}

// Telemetry is one shippable batch of observability state.
type Telemetry struct {
	Events     []Event
	Counters   []CounterDelta
	Gauges     []GaugeValue
	Histograms []HistogramDelta
}

// Empty reports whether the batch carries nothing.
func (tl *Telemetry) Empty() bool {
	return tl == nil || (len(tl.Events) == 0 && len(tl.Counters) == 0 &&
		len(tl.Gauges) == 0 && len(tl.Histograms) == 0)
}

// Encode serializes the batch. Event argument maps are emitted in sorted
// key order, so encoding is deterministic (the round-trip property test
// relies on it).
func (tl *Telemetry) Encode() []byte {
	var w wire.Writer
	w.U8(telemetryVersion)
	w.U32(uint32(len(tl.Events)))
	for i := range tl.Events {
		appendEvent(&w, &tl.Events[i])
	}
	w.U32(uint32(len(tl.Counters)))
	for _, c := range tl.Counters {
		w.Str(c.Name)
		w.I64(c.Delta)
	}
	w.U32(uint32(len(tl.Gauges)))
	for _, g := range tl.Gauges {
		w.Str(g.Name)
		w.F64(g.Value)
	}
	w.U32(uint32(len(tl.Histograms)))
	for _, h := range tl.Histograms {
		w.Str(h.Name)
		w.I64(h.Count)
		w.I64(h.Sum)
		w.I64(h.Max)
		w.U32(uint32(len(h.Buckets)))
		for _, b := range h.Buckets {
			w.U8(b.Idx)
			w.I64(b.N)
		}
	}
	return w.Bytes()
}

func appendEvent(w *wire.Writer, ev *Event) {
	w.Str(ev.Name)
	w.Str(ev.Cat)
	w.Str(ev.Ph)
	w.I32(int32(ev.Rank))
	w.F64(ev.WallUS)
	w.F64(ev.WallDurUS)
	w.F64(ev.VirtUS)
	w.F64(ev.VirtDurUS)
	w.Bool(ev.HasVirt)
	w.U32(uint32(len(ev.Args)))
	keys := make([]string, 0, len(ev.Args))
	for k := range ev.Args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w.Str(k)
		w.F64(ev.Args[k])
	}
}

// Minimum encoded sizes, used to validate list counts against the bytes
// actually remaining before allocating.
const (
	minEventBytes   = 4 + 4 + 4 + 4 + 4*8 + 1 + 4 // empty strings, no args
	minArgBytes     = 4 + 8
	minCounterBytes = 4 + 8
	minGaugeBytes   = 4 + 8
	minHistBytes    = 4 + 3*8 + 4
	minBucketBytes  = 1 + 8
)

// telemetryCount reads a list length and validates it against the bytes
// remaining (the hostile-length-prefix guard wire.Reader applies to its
// own slice types, extended to our structs).
func telemetryCount(r *wire.Reader, minElem int) (int, error) {
	n := int(r.U32())
	if r.Err() != nil {
		return 0, r.Err()
	}
	if n < 0 || n > r.Remaining()/minElem {
		return 0, wire.ErrTruncated
	}
	return n, nil
}

// DecodeTelemetry parses an encoded batch, rejecting version mismatches,
// truncation, hostile length prefixes, and trailing garbage.
func DecodeTelemetry(b []byte) (*Telemetry, error) {
	r := wire.NewReader(b)
	v := r.U8()
	if r.Err() != nil {
		return nil, fmt.Errorf("obs: telemetry frame: %w", r.Err())
	}
	if v != telemetryVersion {
		return nil, fmt.Errorf("obs: telemetry version %d, want %d", v, telemetryVersion)
	}
	tl := &Telemetry{}
	nEvents, err := telemetryCount(r, minEventBytes)
	if err != nil {
		return nil, fmt.Errorf("obs: telemetry events: %w", err)
	}
	for i := 0; i < nEvents; i++ {
		ev := Event{
			Name:      r.Str(),
			Cat:       r.Str(),
			Ph:        r.Str(),
			Rank:      int(r.I32()),
			WallUS:    r.F64(),
			WallDurUS: r.F64(),
			VirtUS:    r.F64(),
			VirtDurUS: r.F64(),
			HasVirt:   r.Bool(),
		}
		nArgs, aerr := telemetryCount(r, minArgBytes)
		if aerr != nil {
			return nil, fmt.Errorf("obs: telemetry event args: %w", aerr)
		}
		if nArgs > 0 {
			ev.Args = make(map[string]float64, nArgs)
			for j := 0; j < nArgs; j++ {
				k := r.Str()
				ev.Args[k] = r.F64()
			}
		}
		if r.Err() != nil {
			return nil, fmt.Errorf("obs: telemetry event: %w", r.Err())
		}
		tl.Events = append(tl.Events, ev)
	}
	nCounters, err := telemetryCount(r, minCounterBytes)
	if err != nil {
		return nil, fmt.Errorf("obs: telemetry counters: %w", err)
	}
	for i := 0; i < nCounters; i++ {
		tl.Counters = append(tl.Counters, CounterDelta{Name: r.Str(), Delta: r.I64()})
	}
	nGauges, err := telemetryCount(r, minGaugeBytes)
	if err != nil {
		return nil, fmt.Errorf("obs: telemetry gauges: %w", err)
	}
	for i := 0; i < nGauges; i++ {
		tl.Gauges = append(tl.Gauges, GaugeValue{Name: r.Str(), Value: r.F64()})
	}
	nHists, err := telemetryCount(r, minHistBytes)
	if err != nil {
		return nil, fmt.Errorf("obs: telemetry histograms: %w", err)
	}
	for i := 0; i < nHists; i++ {
		h := HistogramDelta{Name: r.Str(), Count: r.I64(), Sum: r.I64(), Max: r.I64()}
		nBuckets, berr := telemetryCount(r, minBucketBytes)
		if berr != nil {
			return nil, fmt.Errorf("obs: telemetry buckets: %w", berr)
		}
		for j := 0; j < nBuckets; j++ {
			h.Buckets = append(h.Buckets, BucketDelta{Idx: r.U8(), N: r.I64()})
		}
		tl.Histograms = append(tl.Histograms, h)
	}
	if r.Err() != nil {
		return nil, fmt.Errorf("obs: telemetry frame: %w", r.Err())
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("obs: telemetry frame: %d trailing bytes", r.Remaining())
	}
	return tl, nil
}

// Shipper incrementally drains an observer into encoded telemetry
// batches: each Collect returns everything recorded since the previous
// one. The cursor state (event high-water mark, per-metric shadows)
// lives here, so the observer itself stays untouched and local exports
// keep working. Counters and histograms ship as deltas — folding them on
// the receiving side is then exact regardless of flush timing; gauges
// ship absolute values when they change.
type Shipper struct {
	o        *Obs
	mu       sync.Mutex
	next     int
	counters map[string]int64
	gauges   map[string]uint64 // last shipped bit pattern
	hists    map[string]*histCursor
}

type histCursor struct {
	buckets [histBuckets]int64
	count   int64
	sum     int64
}

// NewShipper returns an incremental drainer for this observer (nil when
// the observer is nil — a nil *Shipper collects nothing).
func (o *Obs) NewShipper() *Shipper {
	if o == nil {
		return nil
	}
	return &Shipper{
		o:        o,
		counters: map[string]int64{},
		gauges:   map[string]uint64{},
		hists:    map[string]*histCursor{},
	}
}

// Collect returns the encoded batch of everything new since the previous
// Collect, or nil when nothing changed. Metric reads race ongoing
// updates benignly: an increment missed by this batch ships with the
// next one (deltas are computed against what was actually shipped).
func (s *Shipper) Collect() []byte {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var tl Telemetry
	if t := s.o.Trace; t != nil {
		tl.Events, s.next = t.EventsSince(s.next)
	}
	if m := s.o.Metrics; m != nil {
		s.collectMetrics(m, &tl)
	}
	if tl.Empty() {
		return nil
	}
	return tl.Encode()
}

// collectMetrics appends the registry's growth since the last batch.
// Names are emitted sorted for deterministic frames.
func (s *Shipper) collectMetrics(m *Registry, tl *Telemetry) {
	m.mu.Lock()
	counters := make(map[string]*Counter, len(m.counters))
	for k, v := range m.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(m.gauges))
	for k, v := range m.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(m.hists))
	for k, v := range m.hists {
		hists[k] = v
	}
	m.mu.Unlock()

	for _, k := range sortedKeys(counters) {
		v := counters[k].Value()
		if d := v - s.counters[k]; d != 0 {
			tl.Counters = append(tl.Counters, CounterDelta{Name: k, Delta: d})
			s.counters[k] = v
		}
	}
	for _, k := range sortedKeys(gauges) {
		v := gauges[k].Value()
		bits := math.Float64bits(v)
		if old, seen := s.gauges[k]; !seen || old != bits {
			tl.Gauges = append(tl.Gauges, GaugeValue{Name: k, Value: v})
			s.gauges[k] = bits
		}
	}
	for _, k := range sortedKeys(hists) {
		h := hists[k]
		cur := s.hists[k]
		if cur == nil {
			cur = &histCursor{}
			s.hists[k] = cur
		}
		count := h.Count()
		if count == cur.count {
			continue
		}
		hd := HistogramDelta{
			Name:  k,
			Count: count - cur.count,
			Sum:   h.Sum() - cur.sum,
			Max:   h.Max(),
		}
		for i := 0; i < histBuckets; i++ {
			if n := h.buckets[i].Load(); n != cur.buckets[i] {
				hd.Buckets = append(hd.Buckets, BucketDelta{Idx: uint8(i), N: n - cur.buckets[i]})
				cur.buckets[i] = n
			}
		}
		// Advance the shadow by exactly what shipped, so concurrent
		// observations landing mid-collection ride the next batch.
		cur.count += hd.Count
		cur.sum += hd.Sum
		tl.Histograms = append(tl.Histograms, hd)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Absorb folds a decoded telemetry batch from another process into this
// observer. Events are tagged with the source rank (when srcRank >= 0),
// shifted onto the local wall axis by wallOffsetUS (the heartbeat
// RTT-midpoint estimate of the sender's trace-clock offset), and
// re-sequenced into the local trace. Counters and histograms fold
// additively — deltas make that exact. Gauges are last-write-wins
// values, so they land namespaced per source rank ("rank3.net.rank_bytes")
// instead of clobbering across processes. Nil-safe.
func (o *Obs) Absorb(tl *Telemetry, srcRank int, wallOffsetUS float64) {
	if o == nil || tl == nil {
		return
	}
	if t := o.Trace; t != nil {
		for _, ev := range tl.Events {
			if srcRank >= 0 {
				ev.Rank = srcRank
			}
			ev.WallUS += wallOffsetUS
			t.Adopt(ev)
		}
	}
	m := o.Metrics
	if m == nil {
		return
	}
	for _, c := range tl.Counters {
		m.Counter(c.Name).Add(c.Delta)
	}
	for _, g := range tl.Gauges {
		name := g.Name
		if srcRank >= 0 {
			name = fmt.Sprintf("rank%d.%s", srcRank, name)
		}
		m.Gauge(name).Set(g.Value)
	}
	for i := range tl.Histograms {
		m.Histogram(tl.Histograms[i].Name).absorb(&tl.Histograms[i])
	}
}
