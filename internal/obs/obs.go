// Package obs is gbpolar's observability layer: hierarchical trace
// spans (phase → sub-phase, per rank) with both wall- and virtual-clock
// durations, an allocation-free metrics registry (counters, gauges,
// power-of-two histograms), and a run manifest that makes every
// results/ artifact reproducible.
//
// The paper's evaluation (Sections V.A–V.B) attributes cost per phase —
// octree build, Born integrals, push-down, E_pol, and communication per
// rank — and DASHMM-style distributed FMM solvers attribute cost per
// traversal phase and per locality to find load imbalance. This package
// provides that lens for every runner in the repository without taxing
// the kernels: instrumentation points live at phase and collective
// boundaries, never inside the SoA batch loops, and the whole layer is
// nil-safe, so a disabled observer costs exactly one pointer test
// (`o == nil`) per instrumentation site.
//
// Outputs:
//
//   - Trace.WriteJSONL: one event per line, ordered per rank by start
//     time (parents before children) — the machine-readable timeline.
//   - Trace.WriteChromeTrace: the same timeline as a chrome://tracing /
//     Perfetto-compatible JSON array (load via chrome://tracing "Load"
//     or https://ui.perfetto.dev).
//   - Registry.WriteJSON / Registry.Fprint: metric snapshot.
//   - Manifest.WriteJSON: config, seed, git describe, host info.
//
// See DESIGN.md §8 for the event schema and metric name catalogue.
package obs

// Obs bundles a trace and a metrics registry. A nil *Obs disables
// everything: every method on it, on a nil *Trace, and on nil metric
// handles is a no-op, so call sites need no conditionals beyond what the
// accessors already perform.
type Obs struct {
	Trace   *Trace
	Metrics *Registry

	// flight is the attached crash flight recorder (see AttachFlight).
	// Set once before the run starts; reads during the run are then safe
	// without synchronization.
	flight *FlightRecorder
}

// New returns an observer with both tracing and metrics enabled.
func New() *Obs {
	return &Obs{Trace: NewTrace(), Metrics: NewRegistry()}
}

// Enabled reports whether the observer collects anything.
func (o *Obs) Enabled() bool { return o != nil }

// AttachFlight wires a flight recorder into the observer: every trace
// event is mirrored into its ring, and DumpFlight writes the ring out.
// Attach before the run starts. Nil-safe.
func (o *Obs) AttachFlight(fr *FlightRecorder) {
	if o == nil {
		return
	}
	o.flight = fr
	o.Trace.SetFlight(fr)
}

// Flight returns the attached flight recorder (nil when none).
func (o *Obs) Flight() *FlightRecorder {
	if o == nil {
		return nil
	}
	return o.flight
}

// DumpFlight dumps the attached recorder's ring (see
// FlightRecorder.Dump); a no-op returning "" when none is attached.
func (o *Obs) DumpFlight(reason string) (string, error) {
	if o == nil || o.flight == nil {
		return "", nil
	}
	return o.flight.Dump(reason)
}

// Begin opens a span on the bundled trace (inert when o or o.Trace is
// nil). virtClock is the rank's virtual clock in seconds, or NoVirtual
// for runners without one.
func (o *Obs) Begin(rank int, cat, name string, virtClock float64) Span {
	if o == nil {
		return Span{}
	}
	return o.Trace.Begin(rank, cat, name, virtClock)
}

// Instant records an instantaneous event (inert when o or o.Trace is
// nil).
func (o *Obs) Instant(rank int, cat, name string, virtClock float64, args ...KV) {
	if o == nil {
		return
	}
	o.Trace.Instant(rank, cat, name, virtClock, args...)
}

// Counter returns the named counter (nil — a no-op handle — when o or
// o.Metrics is nil).
func (o *Obs) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name)
}

// Gauge returns the named gauge (nil when o or o.Metrics is nil).
func (o *Obs) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name)
}

// Histogram returns the named histogram (nil when o or o.Metrics is
// nil).
func (o *Obs) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name)
}
