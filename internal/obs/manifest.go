package obs

import (
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// Manifest records everything needed to reproduce a run: the invoking
// tool and arguments, the generator seed, the tool-specific
// configuration, the source revision and the host. Every artifact
// written into results/ should sit next to (or embed) one.
type Manifest struct {
	// Tool is the producing command (e.g. "gbpol", "gbbench").
	Tool string `json:"tool"`
	// Args is the command line after the tool name.
	Args []string `json:"args,omitempty"`
	// Time is the run's start time, RFC 3339.
	Time string `json:"time"`
	// Seed is the generator seed driving the molecules.
	Seed int64 `json:"seed"`
	// Config carries tool-specific knobs (flag values, scales, ε).
	Config map[string]any `json:"config,omitempty"`
	// Git is `git describe --always --dirty` of the working tree, or
	// "unknown" outside a repository.
	Git string `json:"git"`
	// Host, OS, Arch, CPUs and GoVersion describe the machine the run
	// executed on (the replay host — modeled topology lives in Config).
	Host      string `json:"host"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"go"`
}

// NewManifest collects host and revision info around the given
// tool/seed/config triple. Args defaults to os.Args[1:].
func NewManifest(tool string, seed int64, config map[string]any) *Manifest {
	host, _ := os.Hostname()
	m := &Manifest{
		Tool:      tool,
		Time:      time.Now().Format(time.RFC3339),
		Seed:      seed,
		Config:    config,
		Git:       gitDescribe(),
		Host:      host,
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
	if len(os.Args) > 1 {
		m.Args = append([]string(nil), os.Args[1:]...)
	}
	return m
}

// GitDescribe best-effort identifies the source revision
// (`git describe --always --dirty`, "unknown" outside a checkout) —
// stamped into manifests and perf-gate baselines.
func GitDescribe() string { return gitDescribe() }

// gitDescribe best-effort identifies the source revision.
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// WriteJSON emits the manifest as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile writes the manifest to path (0644).
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
