package obs_test

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"gbpolar/internal/obs"
)

// TestHistogramQuantile pins the bucket-interpolation estimator: exact
// at bucket boundaries, within the factor-2 bucket resolution elsewhere,
// and zero on nil/empty.
func TestHistogramQuantile(t *testing.T) {
	var nilH *obs.Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Fatalf("nil quantile = %v, want 0", got)
	}
	reg := obs.NewRegistry()
	h := reg.Histogram("empty")
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}

	// Uniform 1..8: the p50 target rank 4 falls in the [4,7] bucket
	// after a cumulative 3, giving 4 + 0.25·3 = 4.75 by interpolation.
	u := reg.Histogram("uniform")
	for v := int64(1); v <= 8; v++ {
		u.Observe(v)
	}
	if got := u.Quantile(0.5); math.Abs(got-4.75) > 1e-12 {
		t.Fatalf("uniform p50 = %v, want 4.75", got)
	}
	// q clamps: below 0 behaves like the minimum bucket, above 1 like max.
	if lo, hi := u.Quantile(-1), u.Quantile(2); lo > u.Quantile(0.01) || hi < u.Quantile(0.99) {
		t.Fatalf("clamping broken: q=-1 → %v, q=2 → %v", lo, hi)
	}

	// A constant distribution stays inside its bucket's bounds [4,7].
	c := reg.Histogram("const")
	for i := 0; i < 1000; i++ {
		c.Observe(7)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got := c.Quantile(q); got < 4 || got > 7 {
			t.Fatalf("const-7 q%g = %v, want within bucket [4,7]", q, got)
		}
	}

	// Heavy head with one outlier: p50/p95 stay in the head bucket, the
	// top quantile reaches the outlier's bucket.
	o := reg.Histogram("outlier")
	for i := 0; i < 100; i++ {
		o.Observe(1)
	}
	o.Observe(1000) // lands in the [512,1023] bucket
	if got := o.Quantile(0.5); got != 1 {
		t.Fatalf("outlier p50 = %v, want 1", got)
	}
	if got := o.Quantile(0.95); got != 1 {
		t.Fatalf("outlier p95 = %v, want 1", got)
	}
	if got := o.Quantile(1.0); got < 512 || got > 1023 {
		t.Fatalf("outlier p100 = %v, want within [512,1023]", got)
	}
}

// TestQuantilesInSnapshotAndFprint: the satellite's readability contract
// — p50/p95/p99 must appear in both the JSON snapshot and the printed
// table without any bucket post-processing.
func TestQuantilesInSnapshotAndFprint(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("soa.batch")
	for v := int64(1); v <= 64; v++ {
		h.Observe(v)
	}

	snap := reg.Snapshot()
	hs := snap.Histograms["soa.batch"]
	if hs.P50 <= 0 || hs.P95 < hs.P50 || hs.P99 < hs.P95 {
		t.Fatalf("snapshot quantiles not monotone: p50=%v p95=%v p99=%v", hs.P50, hs.P95, hs.P99)
	}
	// The snapshot's quantiles and the live histogram's agree.
	if live := h.Quantile(0.95); math.Abs(live-hs.P95) > 1e-12 {
		t.Fatalf("snapshot p95 %v != live %v", hs.P95, live)
	}

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Histograms map[string]struct {
			P50 float64 `json:"p50"`
			P95 float64 `json:"p95"`
			P99 float64 `json:"p99"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Histograms["soa.batch"].P95 != hs.P95 {
		t.Fatalf("JSON p95 = %v, want %v", doc.Histograms["soa.batch"].P95, hs.P95)
	}

	buf.Reset()
	if err := reg.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"p50=", "p95=", "p99="} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("Fprint missing %q:\n%s", want, buf.String())
		}
	}
}
