package obs

import (
	"bufio"
	"cmp"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"slices"
	"sync"
	"time"
)

// NoVirtual marks a span or instant with no virtual-clock timestamp
// (shared-memory runners, which have only the wall clock).
const NoVirtual = -1

// KV is one event argument (name → numeric value). Arguments carry
// per-event payload such as bytes moved, rows recomputed or op counts.
type KV struct {
	K string
	V float64
}

// F is shorthand for KV{k, v}.
func F(k string, v float64) KV { return KV{K: k, V: v} }

// Event is one timeline entry. Phases are "X" (complete spans, with
// durations); instantaneous occurrences (fault injections, detections,
// recovery notes) are "i". Timestamps are microseconds: wall times are
// relative to the trace's creation, virtual times to the run's virtual
// clock origin. HasVirt distinguishes a true virtual timestamp of 0
// from "no virtual clock".
type Event struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	Rank int    `json:"rank"`

	WallUS    float64 `json:"wall_us"`
	WallDurUS float64 `json:"wall_dur_us,omitempty"`
	VirtUS    float64 `json:"virt_us"`
	VirtDurUS float64 `json:"virt_dur_us,omitempty"`
	HasVirt   bool    `json:"virt"`

	Args map[string]float64 `json:"args,omitempty"`

	// seq is the emission order, the tie-breaker that keeps the sorted
	// output deterministic.
	seq uint64
}

// start returns the event's ordering timestamp: the virtual clock when
// present (the authoritative time of modeled runs), wall otherwise.
func (e *Event) start() float64 {
	if e.HasVirt {
		return e.VirtUS
	}
	return e.WallUS
}

// dur returns the matching duration for start's clock domain.
func (e *Event) dur() float64 {
	if e.HasVirt {
		return e.VirtDurUS
	}
	return e.WallDurUS
}

// Trace collects events from any number of goroutines. The zero value
// is not usable; create with NewTrace. A nil *Trace is fully inert.
type Trace struct {
	mu     sync.Mutex
	wall0  time.Time
	seq    uint64
	events []Event
	// open tracks spans that have been opened but not yet ended, so
	// exports can emit them explicitly (with a `truncated` marker)
	// instead of losing them. Map slots are reused across Begin/End
	// cycles, so the steady state allocates nothing.
	open   map[uint64]openSpan
	openID uint64
	// logger, when set, streams every recorded event as a structured log
	// line — the live `-v` progress view. Nil costs one pointer test.
	logger *slog.Logger
	// flight, when set, mirrors every recorded event into a fixed-size
	// ring for postmortem dumps (see FlightRecorder).
	flight *FlightRecorder
}

// SetFlight mirrors every subsequently recorded event into fr's ring, so
// a crash dump shows the process's most recent activity. Pass nil to
// stop mirroring.
func (t *Trace) SetFlight(fr *FlightRecorder) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.flight = fr
	t.mu.Unlock()
}

// NowUS returns the trace's wall clock: microseconds since the trace was
// created — the origin every event's WallUS is relative to. The
// telemetry plane timestamps heartbeat probes with it so cross-process
// clock offsets are estimated on the same axis the merged events use.
// Returns 0 on a nil trace.
func (t *Trace) NowUS() float64 {
	if t == nil {
		return 0
	}
	return float64(time.Since(t.wall0)) / float64(time.Microsecond)
}

// SetLogger streams each recorded event (span close or instant) to l as
// a structured log line whose fields mirror the trace schema: the event
// category as the message, plus name, rank, and the wall/virtual
// coordinates in milliseconds. Pass nil to stop streaming.
func (t *Trace) SetLogger(l *slog.Logger) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.logger = l
	t.mu.Unlock()
}

// logEvent renders ev for the streaming logger. Args ride along so a
// collective's bytes or a recovery's row count appear on the line.
func logEvent(l *slog.Logger, ev *Event) {
	attrs := make([]any, 0, 8+2*len(ev.Args))
	attrs = append(attrs, "name", ev.Name, "rank", ev.Rank)
	if ev.Ph == "X" {
		attrs = append(attrs, "wall_ms", ev.WallDurUS/1e3)
	}
	if ev.HasVirt {
		// The virtual clock at which the event lands: span end or
		// instant time — the coordinate trace consumers sort by.
		attrs = append(attrs, "virt_clock_ms", (ev.VirtUS+ev.VirtDurUS)/1e3)
		if ev.Ph == "X" {
			attrs = append(attrs, "virt_ms", ev.VirtDurUS/1e3)
		}
	}
	for k, v := range ev.Args {
		attrs = append(attrs, k, v)
	}
	l.Info(ev.Cat, attrs...)
}

// openSpan is the registry record of a not-yet-ended span.
type openSpan struct {
	name, cat string
	rank      int
	wallStart time.Time
	virtStart float64
	hasVirt   bool
}

// NewTrace returns an empty trace whose wall origin is now.
func NewTrace() *Trace {
	return &Trace{wall0: time.Now(), open: map[uint64]openSpan{}}
}

// Span is an open trace interval. The zero Span (from a nil trace) is
// inert: End on it does nothing. Spans are values — opening one
// allocates nothing beyond the trace's reusable open-span registry.
type Span struct {
	t         *Trace
	id        uint64
	name, cat string
	rank      int
	wallStart time.Time
	virtStart float64
	hasVirt   bool
}

// Begin opens a span at the given virtual clock (seconds; NoVirtual for
// wall-only runners). Nil-safe.
func (t *Trace) Begin(rank int, cat, name string, virtClock float64) Span {
	if t == nil {
		return Span{}
	}
	s := Span{
		t: t, name: name, cat: cat, rank: rank,
		wallStart: time.Now(),
		virtStart: virtClock,
		hasVirt:   virtClock >= 0,
	}
	t.mu.Lock()
	t.openID++
	s.id = t.openID
	t.open[s.id] = openSpan{
		name: name, cat: cat, rank: rank,
		wallStart: s.wallStart, virtStart: virtClock, hasVirt: s.hasVirt,
	}
	t.mu.Unlock()
	return s
}

// End closes the span at the given virtual clock (ignored when the span
// was opened with NoVirtual) and records it with the given arguments.
// Ending a span twice records it once.
func (s Span) End(virtClock float64, args ...KV) {
	if s.t == nil {
		return
	}
	now := time.Now()
	ev := Event{
		Name: s.name, Cat: s.cat, Ph: "X", Rank: s.rank,
		WallUS:    float64(s.wallStart.Sub(s.t.wall0)) / float64(time.Microsecond),
		WallDurUS: float64(now.Sub(s.wallStart)) / float64(time.Microsecond),
		HasVirt:   s.hasVirt,
	}
	if s.hasVirt {
		ev.VirtUS = s.virtStart * 1e6
		if virtClock > s.virtStart {
			ev.VirtDurUS = (virtClock - s.virtStart) * 1e6
		}
	}
	s.t.mu.Lock()
	_, wasOpen := s.t.open[s.id]
	if wasOpen {
		delete(s.t.open, s.id)
	}
	s.t.mu.Unlock()
	if !wasOpen {
		return
	}
	s.t.add(ev, args)
}

// Instant records an instantaneous event.
func (t *Trace) Instant(rank int, cat, name string, virtClock float64, args ...KV) {
	if t == nil {
		return
	}
	ev := Event{
		Name: name, Cat: cat, Ph: "i", Rank: rank,
		WallUS:  float64(time.Since(t.wall0)) / float64(time.Microsecond),
		HasVirt: virtClock >= 0,
	}
	if ev.HasVirt {
		ev.VirtUS = virtClock * 1e6
	}
	t.add(ev, args)
}

func (t *Trace) add(ev Event, args []KV) {
	if len(args) > 0 {
		ev.Args = make(map[string]float64, len(args))
		for _, a := range args {
			ev.Args[a.K] = a.V
		}
	}
	t.record(ev)
}

// record files a fully built event: assigns the emission sequence number
// and feeds the streaming logger and flight ring.
func (t *Trace) record(ev Event) {
	t.mu.Lock()
	ev.seq = t.seq
	t.seq++
	t.events = append(t.events, ev)
	l := t.logger
	fr := t.flight
	t.mu.Unlock()
	if l != nil {
		// Emitted outside the lock so the trace mutex stays a leaf even
		// when the slog handler blocks on its writer.
		logEvent(l, &ev)
	}
	if fr != nil {
		fr.Record(ev)
	}
}

// Adopt records an externally produced event — a telemetry batch from
// another process — verbatim except for a fresh local sequence number.
// Nil-safe.
func (t *Trace) Adopt(ev Event) {
	if t == nil {
		return
	}
	t.record(ev)
}

// EventsSince returns a copy of the recorded events from index n on (in
// emission order) plus the new high-water mark — the incremental cursor
// the telemetry shipper, the /events stream and the anomaly watchdog all
// poll with. Open spans are not included; they ship once ended (the live
// view of in-flight spans is OpenSpans). Nil-safe.
func (t *Trace) EventsSince(n int) ([]Event, int) {
	if t == nil {
		return nil, n
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n >= len(t.events) {
		return nil, len(t.events)
	}
	out := append([]Event(nil), t.events[n:]...)
	return out, len(t.events)
}

// OpenSpans returns the spans currently open, as "X" events carrying
// Args["truncated"] = 1 with the wall duration measured up to now and no
// virtual duration — the same convention Events uses for spans still open
// at export. The health sampler publishes these as open-span age gauges
// so a remote watchdog can see where each rank currently is without the
// span having ended. Nil-safe.
func (t *Trace) OpenSpans() []Event {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.open))
	for _, os := range t.open {
		ev := Event{
			Name: os.name, Cat: os.cat, Ph: "X", Rank: os.rank,
			WallUS:    float64(os.wallStart.Sub(t.wall0)) / float64(time.Microsecond),
			WallDurUS: float64(now.Sub(os.wallStart)) / float64(time.Microsecond),
			HasVirt:   os.hasVirt,
			Args:      map[string]float64{"truncated": 1},
		}
		if os.hasVirt {
			ev.VirtUS = os.virtStart * 1e6
		}
		out = append(out, ev)
	}
	return out
}

// NumEvents returns the number of events an export would emit: recorded
// events plus still-open spans (exported with a `truncated` marker).
func (t *Trace) NumEvents() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events) + len(t.open)
}

// Events returns a sorted copy of the timeline: by rank, then start
// time, with longer (enclosing) spans before shorter ones at equal
// starts — so a parent span always precedes the sub-spans it contains
// and the JSONL output reads as a per-rank, time-ordered log.
//
// Spans still open at the time of the call are included explicitly as
// "X" events carrying Args["truncated"] = 1, with the wall duration
// measured up to now and no virtual duration (the closing virtual clock
// is unknown) — a crash or an export mid-run therefore shows where each
// rank currently is instead of silently dropping the in-flight phase.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	out := make([]Event, 0, len(t.events)+len(t.open))
	out = append(out, t.events...)
	ids := make([]uint64, 0, len(t.open))
	for id := range t.open {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for i, id := range ids {
		os := t.open[id]
		ev := Event{
			Name: os.name, Cat: os.cat, Ph: "X", Rank: os.rank,
			WallUS:    float64(os.wallStart.Sub(t.wall0)) / float64(time.Microsecond),
			WallDurUS: float64(now.Sub(os.wallStart)) / float64(time.Microsecond),
			HasVirt:   os.hasVirt,
			Args:      map[string]float64{"truncated": 1},
			seq:       t.seq + uint64(i),
		}
		if os.hasVirt {
			ev.VirtUS = os.virtStart * 1e6
		}
		out = append(out, ev)
	}
	t.mu.Unlock()
	slices.SortStableFunc(out, func(a, b Event) int {
		if c := cmp.Compare(a.Rank, b.Rank); c != 0 {
			return c
		}
		if c := cmp.Compare(a.start(), b.start()); c != 0 {
			return c
		}
		if c := cmp.Compare(b.dur(), a.dur()); c != 0 {
			return c
		}
		return cmp.Compare(a.seq, b.seq)
	})
	return out
}

// WriteJSONL emits the sorted timeline, one JSON event per line.
func (t *Trace) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range t.Events() {
		if err := enc.Encode(&ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// phaseAgg is one row of the per-phase summary.
type phaseAgg struct {
	cat, name  string
	count      int
	wallUS     float64
	virtUS     float64
	bytesMoved float64
}

// Fprint writes a human-readable per-phase table: spans aggregated by
// (category, name) with counts and total wall/virtual time, instants by
// count. This is the `-v` view of a run.
func (t *Trace) Fprint(w io.Writer) error {
	if t == nil {
		return nil
	}
	byKey := map[string]*phaseAgg{}
	var order []string
	for _, ev := range t.Events() {
		key := ev.Cat + "\x00" + ev.Name
		a := byKey[key]
		if a == nil {
			a = &phaseAgg{cat: ev.Cat, name: ev.Name}
			byKey[key] = a
			order = append(order, key)
		}
		a.count++
		a.wallUS += ev.WallDurUS
		a.virtUS += ev.VirtDurUS
		a.bytesMoved += ev.Args["bytes"]
	}
	if _, err := fmt.Fprintf(w, "%-12s %-22s %7s %12s %12s %10s\n",
		"category", "name", "count", "wall (ms)", "virt (ms)", "bytes"); err != nil {
		return err
	}
	for _, key := range order {
		a := byKey[key]
		if _, err := fmt.Fprintf(w, "%-12s %-22s %7d %12.3f %12.3f %10.0f\n",
			a.cat, a.name, a.count, a.wallUS/1e3, a.virtUS/1e3, a.bytesMoved); err != nil {
			return err
		}
	}
	return nil
}
