package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// After wraparound the ring holds exactly the last size events, oldest
// first.
func TestFlightWraparound(t *testing.T) {
	fr := NewFlightRecorder(8, t.TempDir())
	for i := 0; i < 20; i++ {
		fr.Record(Event{Name: fmt.Sprintf("e%d", i)})
	}
	evs := fr.Events()
	if len(evs) != 8 {
		t.Fatalf("ring holds %d events, want 8", len(evs))
	}
	for i, ev := range evs {
		if want := fmt.Sprintf("e%d", 12+i); ev.Name != want {
			t.Fatalf("slot %d = %q, want %q", i, ev.Name, want)
		}
	}
}

// Fewer events than capacity: everything is retained in order.
func TestFlightUnderfill(t *testing.T) {
	fr := NewFlightRecorder(64, t.TempDir())
	for i := 0; i < 5; i++ {
		fr.Record(Event{Name: fmt.Sprintf("e%d", i)})
	}
	evs := fr.Events()
	if len(evs) != 5 || evs[0].Name != "e0" || evs[4].Name != "e4" {
		t.Fatalf("underfilled ring: %d events, first %q", len(evs), evs[0].Name)
	}
}

// Concurrent writers (with a racing reader) must be data-race-free and
// the ring must be exact again once writers quiesce. Run under -race.
func TestFlightConcurrentWriters(t *testing.T) {
	fr := NewFlightRecorder(128, t.TempDir())
	const writers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				fr.Record(Event{Name: "w", Rank: w, WallUS: float64(i)})
			}
		}(w)
	}
	// A reader racing the writers: the snapshot is approximate but must
	// never crash or return more than the capacity.
	for i := 0; i < 20; i++ {
		if n := len(fr.Events()); n > 128 {
			t.Fatalf("racing snapshot returned %d events (> capacity)", n)
		}
	}
	wg.Wait()
	if n := len(fr.Events()); n != 128 {
		t.Fatalf("quiesced ring holds %d events, want 128", n)
	}
	// Post-quiesce writes are exact again.
	for i := 0; i < 3; i++ {
		fr.Record(Event{Name: fmt.Sprintf("tail%d", i)})
	}
	evs := fr.Events()
	if got := evs[len(evs)-1].Name; got != "tail2" {
		t.Fatalf("newest event %q, want tail2", got)
	}
}

// Dump writes ReadJSONL-compatible output and sanitizes the reason into
// the filename; events recorded via an attached observer land in the
// ring automatically.
func TestFlightDumpRoundTrip(t *testing.T) {
	dir := t.TempDir()
	o := New()
	o.AttachFlight(NewFlightRecorder(16, dir))

	sp := o.Begin(2, "phase", "born", NoVirtual)
	sp.End(NoVirtual, F("bytes", 64))
	o.Instant(1, "membership", "death: heartbeat timeout", NoVirtual)

	path, err := o.DumpFlight("death: heartbeat timeout")
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(path)
	if !strings.HasPrefix(base, "flight-death--heartbeat-timeout-") {
		t.Fatalf("unsanitized dump name %q", base)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := ReadJSONL(f)
	if err != nil {
		t.Fatalf("dump is not ReadJSONL-compatible: %v", err)
	}
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("dump holds %d events, want 2", len(evs))
	}
	var names []string
	for _, ev := range evs {
		names = append(names, ev.Name)
	}
	if !strings.Contains(strings.Join(names, ","), "born") {
		t.Fatalf("span missing from dump: %v", names)
	}
}

// A nil recorder and a detached observer are fully inert.
func TestFlightNilSafe(t *testing.T) {
	var fr *FlightRecorder
	fr.Record(Event{})
	if fr.Events() != nil {
		t.Fatal("nil recorder returned events")
	}
	if p, err := fr.Dump("x"); p != "" || err != nil {
		t.Fatalf("nil Dump = %q, %v", p, err)
	}
	var o *Obs
	if p, err := o.DumpFlight("x"); p != "" || err != nil {
		t.Fatalf("nil observer DumpFlight = %q, %v", p, err)
	}
}
