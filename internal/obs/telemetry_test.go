package obs

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// randTelemetry builds a random but valid batch: the round-trip property
// must hold for any mix of events, metric deltas, and argument maps.
func randTelemetry(rng *rand.Rand) *Telemetry {
	tl := &Telemetry{}
	for i, n := 0, rng.Intn(6); i < n; i++ {
		ev := Event{
			Name:      fmt.Sprintf("ev%d", rng.Intn(100)),
			Cat:       []string{"phase", "collective", "membership", ""}[rng.Intn(4)],
			Ph:        []string{"X", "i"}[rng.Intn(2)],
			Rank:      rng.Intn(8) - 1,
			WallUS:    rng.Float64() * 1e6,
			WallDurUS: rng.Float64() * 1e3,
			HasVirt:   rng.Intn(2) == 0,
		}
		if ev.HasVirt {
			ev.VirtUS = rng.Float64() * 1e6
			ev.VirtDurUS = rng.Float64() * 1e3
		}
		if na := rng.Intn(4); na > 0 {
			ev.Args = make(map[string]float64, na)
			for j := 0; j < na; j++ {
				ev.Args[fmt.Sprintf("arg%d", j)] = rng.NormFloat64()
			}
		}
		tl.Events = append(tl.Events, ev)
	}
	for i, n := 0, rng.Intn(4); i < n; i++ {
		tl.Counters = append(tl.Counters, CounterDelta{
			Name: fmt.Sprintf("c.%d", i), Delta: rng.Int63n(1e9) - 1e6,
		})
	}
	for i, n := 0, rng.Intn(4); i < n; i++ {
		tl.Gauges = append(tl.Gauges, GaugeValue{
			Name: fmt.Sprintf("g.%d", i), Value: rng.NormFloat64() * 1e9,
		})
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		h := HistogramDelta{
			Name:  fmt.Sprintf("h.%d", i),
			Count: rng.Int63n(1000),
			Sum:   rng.Int63n(1e9),
			Max:   rng.Int63n(1e9),
		}
		for j, nb := 0, rng.Intn(5); j < nb; j++ {
			h.Buckets = append(h.Buckets, BucketDelta{
				Idx: uint8(rng.Intn(histBuckets)), N: rng.Int63n(1e6) + 1,
			})
		}
		tl.Histograms = append(tl.Histograms, h)
	}
	return tl
}

// The codec property: decode(encode(x)) == x for arbitrary batches.
func TestTelemetryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		want := randTelemetry(rng)
		got, err := DecodeTelemetry(want.Encode())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: round trip mismatch:\n got %+v\nwant %+v", trial, got, want)
		}
	}
}

// Every strict prefix of a valid frame must decode to an error — never a
// panic, never a silently partial batch.
func TestTelemetryTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var full []byte
	for full == nil || len(full) < 100 {
		full = randTelemetry(rng).Encode()
	}
	for n := 0; n < len(full); n++ {
		if _, err := DecodeTelemetry(full[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(full))
		}
	}
	// Trailing garbage is rejected too: a frame is exactly one batch.
	if _, err := DecodeTelemetry(append(append([]byte(nil), full...), 0xAB)); err == nil {
		t.Fatal("frame with trailing byte decoded without error")
	}
}

// A wrong version byte is rejected before anything else is parsed.
func TestTelemetryVersionMismatch(t *testing.T) {
	b := (&Telemetry{Counters: []CounterDelta{{Name: "c", Delta: 1}}}).Encode()
	b[0] = telemetryVersion + 1
	if _, err := DecodeTelemetry(b); err == nil {
		t.Fatal("future-version frame decoded without error")
	}
}

// Fuzzing malformed frames: random corruption of valid frames and fully
// random byte strings must never panic or over-allocate — hostile length
// prefixes are capped against the bytes actually remaining.
func TestTelemetryCorruptionFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		b := randTelemetry(rng).Encode()
		for k, n := 0, 1+rng.Intn(4); k < n; k++ {
			b[rng.Intn(len(b))] ^= byte(1 + rng.Intn(255))
		}
		// Either outcome is fine; surviving the parse is the property.
		DecodeTelemetry(b)
	}
	for trial := 0; trial < 2000; trial++ {
		b := make([]byte, rng.Intn(200))
		rng.Read(b)
		DecodeTelemetry(b)
	}
}

// The shipper drains incrementally: each Collect returns exactly what is
// new, and folding every batch into a second observer reconstructs the
// source's counters, histograms and events bit-for-bit.
func TestShipperIncrementalAbsorb(t *testing.T) {
	src := New()
	dst := New()
	ship := src.NewShipper()

	absorb := func() {
		b := ship.Collect()
		if b == nil {
			return
		}
		tl, err := DecodeTelemetry(b)
		if err != nil {
			t.Fatal(err)
		}
		dst.Absorb(tl, 3, 0)
	}

	if ship.Collect() != nil {
		t.Fatal("empty observer produced a batch")
	}

	sp := src.Begin(0, "phase", "build", NoVirtual)
	sp.End(NoVirtual, F("bytes", 128))
	src.Counter("net.frames.sent").Add(5)
	src.Histogram("net.frame.deposit_bytes").Observe(100)
	src.Gauge("net.rank_bytes").Set(42)
	absorb()

	src.Counter("net.frames.sent").Add(7)
	src.Histogram("net.frame.deposit_bytes").Observe(3000)
	src.Instant(0, "membership", "rejoin", NoVirtual)
	absorb()

	if ship.Collect() != nil {
		t.Fatal("drained observer produced another batch")
	}

	if got := dst.Counter("net.frames.sent").Value(); got != 12 {
		t.Fatalf("folded counter = %d, want 12", got)
	}
	h := dst.Histogram("net.frame.deposit_bytes")
	if h.Count() != 2 || h.Sum() != 3100 || h.Max() != 3000 {
		t.Fatalf("folded histogram count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
	// Gauges are last-write-wins, so they land namespaced by source rank.
	if got := dst.Gauge("rank3.net.rank_bytes").Value(); got != 42 {
		t.Fatalf("rank-namespaced gauge = %g, want 42", got)
	}
	evs := dst.Trace.Events()
	if len(evs) != 2 {
		t.Fatalf("folded %d events, want 2", len(evs))
	}
	for _, ev := range evs {
		if ev.Rank != 3 {
			t.Fatalf("absorbed event rank %d, want source rank 3", ev.Rank)
		}
	}
	if evs[0].Args["bytes"] != 128 {
		t.Fatalf("span args lost: %+v", evs[0].Args)
	}
}

// Absorb shifts event wall timestamps by the clock-offset estimate but
// leaves durations alone — reconciliation compares durations, which must
// survive the wire bit-for-bit.
func TestAbsorbWallOffset(t *testing.T) {
	src := New()
	sp := src.Begin(1, "phase", "epol", NoVirtual)
	sp.End(NoVirtual)
	tl, err := DecodeTelemetry(src.NewShipper().Collect())
	if err != nil {
		t.Fatal(err)
	}
	wantDur := tl.Events[0].WallDurUS
	wantWall := tl.Events[0].WallUS

	dst := New()
	const off = 12345.5
	dst.Absorb(tl, 1, off)
	ev := dst.Trace.Events()[0]
	if ev.WallUS != wantWall+off {
		t.Fatalf("wall %g, want %g", ev.WallUS, wantWall+off)
	}
	if math.Float64bits(ev.WallDurUS) != math.Float64bits(wantDur) {
		t.Fatalf("duration changed across the wire: %g vs %g", ev.WallDurUS, wantDur)
	}
}
