package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// ReadJSONL parses a timeline previously written by Trace.WriteJSONL and
// returns a Trace that replays it: Events(), Fprint, WriteChromeTrace
// and WriteJSONL on the result reproduce the original timeline. Line
// order becomes the sequence tie-breaker, so a write→read→write
// round-trip is byte-identical. Blank lines are skipped; a malformed
// line fails with its 1-based line number.
//
// This is the entry point of offline analysis (cmd/gbtrace): a traced
// run exports JSONL, and the analyzer re-ingests it later, possibly on a
// different machine.
func ReadJSONL(r io.Reader) (*Trace, error) {
	t := &Trace{wall0: time.Now(), open: map[uint64]openSpan{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("obs: jsonl line %d: %w", line, err)
		}
		if ev.Ph != "X" && ev.Ph != "i" {
			return nil, fmt.Errorf("obs: jsonl line %d: unknown phase type %q", line, ev.Ph)
		}
		ev.seq = t.seq
		t.seq++
		t.events = append(t.events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading jsonl: %w", err)
	}
	return t, nil
}
