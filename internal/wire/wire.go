// Package wire provides the bounds-checked binary encoding shared by the
// snapshot codec (internal/core), the octree serializer and the TCP
// cluster transport's frame bodies (internal/cluster/net).
//
// All integers are little-endian; float64s travel as their IEEE-754 bit
// patterns; variable-length arrays carry a uint32 count that the Reader
// validates against the bytes actually remaining BEFORE allocating, so a
// truncated, corrupted or adversarial input fails with ErrTruncated
// instead of over-allocating or panicking — the property the snapshot
// fuzz tests pin.
package wire

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrTruncated reports that a Reader ran out of input (or a length
// prefix claimed more bytes than remain). Callers wrap it into their own
// typed error.
var ErrTruncated = errors.New("wire: truncated input")

// Writer appends binary values to a growing buffer. The zero value is
// ready to use.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Raw appends b verbatim (no length prefix).
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a bool as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I32 appends an int32 (two's complement over U32).
func (w *Writer) I32(v int32) { w.U32(uint32(v)) }

// I64 appends an int64 (two's complement over U64).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 appends a float64 as its IEEE-754 bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Str appends a uint32 length followed by the string bytes.
func (w *Writer) Str(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// F64s appends a uint32 count followed by the values.
func (w *Writer) F64s(vs []float64) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.F64(v)
	}
}

// I32s appends a uint32 count followed by the values.
func (w *Writer) I32s(vs []int32) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.I32(v)
	}
}

// U64s appends a uint32 count followed by the values.
func (w *Writer) U64s(vs []uint64) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.U64(v)
	}
}

// U8s appends a uint32 count followed by the bytes.
func (w *Writer) U8s(vs []uint8) {
	w.U32(uint32(len(vs)))
	w.buf = append(w.buf, vs...)
}

// Reader consumes binary values from a buffer. After the first failure
// every method returns zero values and Err reports ErrTruncated, so
// decoders can read a whole structure and check the error once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps b for reading. The buffer is not copied.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the sticky error (nil, or ErrTruncated).
func (r *Reader) Err() error { return r.err }

// Remaining returns how many bytes are left.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Remaining() < n {
		r.err = ErrTruncated
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// count reads a uint32 length prefix and validates count*elemSize against
// the remaining bytes, the guard that keeps hostile inputs from forcing
// huge allocations.
func (r *Reader) count(elemSize int) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n > r.Remaining()/elemSize {
		r.err = ErrTruncated
		return 0
	}
	return n
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads one byte as a bool (nonzero = true).
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I32 reads an int32.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Str reads a length-prefixed string.
func (r *Reader) Str() string {
	n := r.count(1)
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// F64s reads a length-prefixed []float64. Returns nil for count 0.
func (r *Reader) F64s() []float64 {
	n := r.count(8)
	if n == 0 || r.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
	}
	return out
}

// I32s reads a length-prefixed []int32. Returns nil for count 0.
func (r *Reader) I32s() []int32 {
	n := r.count(4)
	if n == 0 || r.err != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = r.I32()
	}
	return out
}

// U64s reads a length-prefixed []uint64. Returns nil for count 0.
func (r *Reader) U64s() []uint64 {
	n := r.count(8)
	if n == 0 || r.err != nil {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.U64()
	}
	return out
}

// U8s reads a length-prefixed []uint8. Returns nil for count 0. The
// returned slice is a copy, never a view into the input buffer.
func (r *Reader) U8s() []uint8 {
	n := r.count(1)
	if n == 0 || r.err != nil {
		return nil
	}
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]uint8, n)
	copy(out, b)
	return out
}
