// Command gbpol computes the GB polarization energy of a molecule with
// the octree-based algorithm of Tithi & Chowdhury (SC 2012).
//
// Usage:
//
//	gbpol -in molecule.pqr                        # shared memory, all cores
//	gbpol -gen 5000 -runner mpi -procs 12         # generated molecule, OCT_MPI
//	gbpol -gen 50000 -runner hybrid -procs 4 -threads 6 -naive
//	gbpol -gen 5000 -runner resilient -procs 4 -crash-rank 1 -crash-collective 2
//
// Runners: shared (OCT_CILK), mpi (OCT_MPI), hybrid (OCT_MPI+CILK),
// resilient (OCT_MPI with fault injection + self-healing recovery),
// net (real multi-process cluster over TCP with checkpoint/restart and
// elastic membership), naive (exact quadratic reference).
//
// The net runner launches Procs-1 worker processes (gbpol re-executed
// with -net-worker), rendezvouses them through a TCP coordinator and
// computes as rank 0 itself. Chaos demo — SIGKILL rank 2 entering its
// second collective, respawn it, and still match the fault-free energy:
//
//	gbpol -gen 5000 -runner net -procs 4 -net-kill-rank 2 -net-kill-collective 2
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"gbpolar"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gbpol: ")

	var (
		inPath   = flag.String("in", "", "molecule file (.pqr or .xyzqr); empty = use -gen")
		gen      = flag.Int("gen", 5000, "atoms in the generated test protein (when -in is empty)")
		seed     = flag.Int64("seed", 1, "generator seed")
		runner   = flag.String("runner", "shared", "shared | mpi | hybrid | naive")
		procs    = flag.Int("procs", 4, "ranks P for mpi/hybrid runners")
		threads  = flag.Int("threads", 0, "threads (shared: workers, hybrid: per rank; 0 = auto)")
		epsBorn  = flag.Float64("eps-born", 0.9, "Born-radius approximation parameter")
		builder  = flag.String("builder", "recursive", "octree construction algorithm: recursive | morton")
		epsEpol  = flag.Float64("eps-epol", 0.9, "E_pol approximation parameter")
		approx   = flag.Bool("approx-math", false, "enable fast sqrt/exp kernels")
		prec     = flag.String("precision", "exact", "compiled-kernel arithmetic tier: exact | lanes | f32")
		farOrder = flag.Int("far-order", 0, "far-field multipole order: 0 pseudo-particle | 1 +dipoles | 2 +quadrupoles, consolidated far lists")
		naive    = flag.Bool("naive", false, "also run the exact reference and report the error")
		modeled  = flag.Bool("modeled", true, "distributed runners: virtual-clock accounting")
		radiiOut = flag.String("radii-out", "", "write Born radii (one per line) to this file")

		// Fault injection (resilient runner): deterministic crashes, drops
		// and delays with self-healing recovery.
		crashRank  = flag.Int("crash-rank", -1, "resilient: rank to crash (-1 = none)")
		crashClock = flag.Float64("crash-clock", -1, "resilient: crash the rank at this virtual time (s)")
		crashColl  = flag.Int("crash-collective", 0, "resilient: crash the rank entering its Nth collective (1-based)")
		dropRank   = flag.Int("drop-rank", -1, "resilient: rank whose next sends are dropped (-1 = none)")
		dropCount  = flag.Int("drop-count", 1, "resilient: how many sends to drop")
		delayRank  = flag.Int("delay-rank", -1, "resilient: rank whose next send is delayed (-1 = none)")
		delayBy    = flag.Duration("delay-by", time.Millisecond, "resilient: added virtual flight time")
		chaosSeed  = flag.Int64("chaos-seed", 0, "resilient: random fault schedule seed (0 = none)")
		chaosN     = flag.Int("chaos-faults", 2, "resilient: number of random faults for -chaos-seed")
		chaosHzn   = flag.Float64("chaos-horizon", 0.01, "resilient: virtual-time horizon (s) for random crash/delay scheduling")

		// Real multi-process cluster transport (net runner + worker mode).
		netWorker     = flag.Bool("net-worker", false, "run as a worker process of a net run (joins the cluster in -net-membership)")
		netRank       = flag.Int("net-rank", -1, "worker: this process's rank")
		netMembership = flag.String("net-membership", "", "net: cluster membership file (default <tmp>/gbpol-cluster.json)")
		netCheckpoint = flag.String("net-checkpoint", "", "net: engine snapshot path workers load and restarts resume from (default <tmp>/gbpol.ckpt)")
		netStall      = flag.Duration("net-stall", 2*time.Minute, "net: per-collective stall budget")
		netRespawn    = flag.Bool("net-respawn", true, "net: respawn each crashed worker once (elastic re-admission)")
		netKillRank   = flag.Int("net-kill-rank", -1, "net chaos demo: worker rank to SIGKILL (-1 = none)")
		netKillColl   = flag.Int("net-kill-collective", 0, "chaos: SIGKILL the process (worker: this one; net: -net-kill-rank's first launch) entering its Nth collective")
		netTelemetry  = flag.Bool("net-telemetry", false, "worker: collect trace/metrics and ship telemetry batches to the coordinator (the net runner sets this on spawned workers when it is observing)")
		watchBase     = flag.String("watch-baseline", "auto", "net: perf-gate baseline JSON for the live anomaly watchdog (auto = results/baseline.json when present and observing; none = off)")

		// Observability and profiling.
		verbose     = flag.Bool("v", false, "stream structured per-span progress lines (rank, phase, virtual clock) and print the span/metrics tables after the run")
		traceOut    = flag.String("trace", "", "write the span/event timeline as JSONL to this file")
		chromeOut   = flag.String("chrome", "", "write a chrome://tracing-compatible trace to this file")
		metricsOut  = flag.String("metrics", "", "write the metrics snapshot as JSON to this file")
		manifestOut = flag.String("manifest", "", "write the run manifest (config, seed, git, host) to this file")
		obsAddr     = flag.String("obs-addr", "", "serve the live observability endpoint (/metrics Prometheus text, /healthz, /readyz, /debug/pprof) on this address (e.g. localhost:9090; port 0 = ephemeral)")
		obsFlight   = flag.String("obs-flight", "", "crash flight recorder: dump the most recent trace events as JSONL into this directory on death detection, degradation, panic, or SIGTERM")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *netWorker {
		// Worker mode: no molecule building, no flags beyond the cluster
		// ones — everything (data, parameters, compiled lists) comes from
		// the coordinator's checkpoint.
		if *netRank < 0 || *netMembership == "" {
			log.Fatal("-net-worker needs -net-rank and -net-membership")
		}
		// Telemetry: an observing worker ships its spans and metric
		// deltas to the coordinator, which folds them into the merged
		// cross-process timeline.
		var wo *gbpolar.Observer
		if *netTelemetry || *obsAddr != "" || *obsFlight != "" {
			wo = gbpolar.NewObserver()
		}
		if wo != nil && *obsFlight != "" {
			fr := gbpolar.NewFlightRecorder(0, *obsFlight)
			wo.AttachFlight(fr)
			fr.DumpOnSignal()
		}
		completed, err := gbpolar.RunNetWorker(*netMembership, *netRank, gbpolar.NetWorkerOptions{
			StallTimeout:     *netStall,
			KillAtCollective: *netKillColl,
			Obs:              wo,
			ObsAddr:          *obsAddr,
		})
		if err != nil {
			log.Fatalf("worker rank %d: %v", *netRank, err)
		}
		fmt.Printf("worker rank %d: done (completed=%v)\n", *netRank, completed)
		return
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
		fmt.Printf("pprof: serving on http://%s/debug/pprof/\n", *pprofAddr)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	var o *gbpolar.Observer
	if *verbose || *traceOut != "" || *chromeOut != "" || *metricsOut != "" ||
		*obsAddr != "" || *obsFlight != "" {
		o = gbpolar.NewObserver()
	}
	if o != nil && *obsFlight != "" {
		fr := gbpolar.NewFlightRecorder(0, *obsFlight)
		o.AttachFlight(fr)
		fr.DumpOnSignal()
		fmt.Printf("flight recorder: dumping last %d events to %s on fault or SIGTERM\n",
			gbpolar.DefaultFlightEvents, *obsFlight)
	}
	if *obsAddr != "" && *runner != "net" {
		// The net runner wires the endpoint itself (membership-backed
		// health probes + the bound address published in the membership
		// file); every other runner serves a standalone one here.
		srv, err := gbpolar.ServeObs(*obsAddr, o)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("obs: serving http://%s/metrics (+/healthz, /readyz, /debug/pprof)\n", srv.Addr())
	}
	if *verbose {
		// Stream every span close and instant as a structured progress
		// line (rank, phase name, wall/virtual clocks) while the run is
		// still going; the summary tables follow at the end.
		o.Trace.SetLogger(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	}

	mol, err := loadOrGen(*inPath, *gen, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("molecule: %s (%d atoms, net charge %+.2f e)\n",
		mol.Name, mol.NumAtoms(), mol.TotalCharge())

	buildStart := time.Now()
	eng, err := gbpolar.NewEngine(mol, gbpolar.Options{
		EpsBorn:         *epsBorn,
		EpsEpol:         *epsEpol,
		ApproximateMath: *approx,
		Precision:       *prec,
		Builder:         *builder,
		FarOrder:        *farOrder,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("surface: %d quadrature points; octrees built in %v (preprocessing)\n",
		eng.NumQuadraturePoints(), time.Since(buildStart).Round(time.Millisecond))
	eng.Observe(o)

	var res *gbpolar.Result
	switch *runner {
	case "shared":
		th := *threads
		if th == 0 {
			th = runtime.GOMAXPROCS(0)
		}
		res, err = eng.ComputeShared(th)
	case "mpi":
		res, err = eng.ComputeDistributed(gbpolar.Cluster{
			Procs: *procs, ThreadsPerProc: 1, RanksPerNode: min(*procs, 12), Modeled: *modeled,
		})
	case "hybrid":
		th := *threads
		if th == 0 {
			th = 6
		}
		res, err = eng.ComputeDistributed(gbpolar.Cluster{
			Procs: *procs, ThreadsPerProc: th, RanksPerNode: max(1, 12/th), Modeled: *modeled,
		})
	case "resilient":
		th := *threads
		if th == 0 {
			th = 1
		}
		plan := buildFaultPlan(*crashRank, *crashClock, *crashColl,
			*dropRank, *dropCount, *delayRank, *delayBy, *chaosSeed, *chaosN, *chaosHzn, *procs)
		res, err = eng.ComputeDistributedResilient(gbpolar.Cluster{
			Procs: *procs, ThreadsPerProc: th, RanksPerNode: min(*procs, 12), Modeled: true,
		}, plan)
	case "net":
		th := *threads
		if th == 0 {
			th = 1
		}
		res, err = runNet(eng, *procs, th, *netMembership, *netCheckpoint,
			*netStall, *netRespawn, *netKillRank, *netKillColl,
			o != nil, *obsAddr, *obsFlight, *watchBase)
	case "naive":
		start := time.Now()
		e, radii := eng.ComputeNaive()
		res = &gbpolar.Result{Epol: e, BornRadii: radii, WallSeconds: time.Since(start).Seconds()}
	default:
		log.Fatalf("unknown runner %q (want shared|mpi|hybrid|resilient|net|naive)", *runner)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("E_pol = %.6g kcal/mol\n", res.Epol)
	fmt.Printf("wall time: %.4gs", res.WallSeconds)
	if res.ModelSeconds > 0 {
		fmt.Printf("   modeled time: %.4gs", res.ModelSeconds)
	}
	if res.Ops > 0 {
		fmt.Printf("   kernel ops: %.3g", res.Ops)
	}
	fmt.Println()
	if res.Report != nil {
		fmt.Println(res.Report)
		if res.Report.Faults != nil {
			fmt.Println(res.Report.Faults)
		}
	}

	if *naive && *runner != "naive" {
		e, _ := eng.ComputeNaive()
		fmt.Printf("naive reference: %.6g kcal/mol  (error %.4f%%)\n",
			e, 100*(res.Epol-e)/e)
	}

	if *radiiOut != "" {
		f, err := os.Create(*radiiOut)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range res.BornRadii {
			fmt.Fprintf(f, "%.6f\n", r)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Born radii written to %s\n", *radiiOut)
	}

	if *verbose && o != nil {
		fmt.Println()
		if err := o.Trace.Fprint(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		if err := o.Metrics.Fprint(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	if *traceOut != "" {
		writeTo(*traceOut, o.Trace.WriteJSONL)
		fmt.Printf("trace written to %s (%d events)\n", *traceOut, o.Trace.NumEvents())
	}
	if *chromeOut != "" {
		writeTo(*chromeOut, o.Trace.WriteChromeTrace)
		fmt.Printf("chrome trace written to %s (load via chrome://tracing or https://ui.perfetto.dev)\n", *chromeOut)
	}
	if *metricsOut != "" {
		writeTo(*metricsOut, o.Metrics.WriteJSON)
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}
	if *manifestOut != "" {
		man := gbpolar.NewManifest("gbpol", *seed, map[string]any{
			"in": *inPath, "gen": *gen, "runner": *runner,
			"procs": *procs, "threads": *threads,
			"eps_born": *epsBorn, "eps_epol": *epsEpol, "approx_math": *approx,
			"precision": *prec, "far_order": *farOrder, "kernel_isa": gbpolar.KernelISA(),
		})
		if err := man.WriteFile(*manifestOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("manifest written to %s\n", *manifestOut)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("heap profile written to %s\n", *memProfile)
	}
}

// runNet drives the multi-process TCP runner: it re-executes this binary
// as Procs-1 worker processes, optionally SIGKILLs one mid-run (the
// chaos demo) and respawns crashed workers for elastic re-admission.
func runNet(eng *gbpolar.Engine, procs, threads int, membership, checkpoint string,
	stall time.Duration, respawn bool, killRank, killColl int,
	telemetry bool, obsAddr, obsFlight, watchBase string) (*gbpolar.Result, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	// Watchdog baseline: "auto" arms the watchdog with the checked-in
	// perf-gate baseline when one exists and the run is observed; a path
	// arms it unconditionally; "none"/"" disables.
	switch watchBase {
	case "none", "":
		watchBase = ""
	case "auto":
		watchBase = ""
		if telemetry {
			if _, serr := os.Stat("results/baseline.json"); serr == nil {
				watchBase = "results/baseline.json"
			}
		}
	}
	if watchBase != "" {
		fmt.Printf("net: anomaly watchdog armed with baseline %s\n", watchBase)
	}
	if membership == "" {
		membership = filepath.Join(os.TempDir(), fmt.Sprintf("gbpol-cluster-%d.json", os.Getpid()))
	}
	if checkpoint == "" {
		checkpoint = filepath.Join(os.TempDir(), fmt.Sprintf("gbpol-%d.ckpt", os.Getpid()))
	}
	var mu sync.Mutex
	killArmed := killRank > 0 && killColl > 0
	spawn := func(rank int) error {
		args := []string{
			"-net-worker",
			"-net-rank", strconv.Itoa(rank),
			"-net-membership", membership,
			"-net-stall", stall.String(),
		}
		if telemetry {
			// An observing coordinator wants the merged timeline, so
			// every worker ships its telemetry too.
			args = append(args, "-net-telemetry")
		}
		if obsFlight != "" {
			args = append(args, "-obs-flight", obsFlight)
		}
		mu.Lock()
		if killArmed && rank == killRank {
			// Only the first launch carries the kill: the respawned
			// incarnation must survive to demonstrate re-admission.
			killArmed = false
			args = append(args, "-net-kill-collective", strconv.Itoa(killColl))
		}
		mu.Unlock()
		cmd := exec.Command(exe, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return err
		}
		go cmd.Wait()
		return nil
	}
	fmt.Printf("net: coordinator + %d worker processes, membership %s, checkpoint %s\n",
		procs-1, membership, checkpoint)
	return eng.ComputeNet(context.Background(), gbpolar.NetRun{
		Procs:          procs,
		ThreadsPerProc: threads,
		MembershipPath: membership,
		CheckpointPath: checkpoint,
		Spawn:          spawn,
		RespawnDead:    respawn,
		StallTimeout:   stall,
		ObsAddr:        obsAddr,
		FlightDir:      obsFlight,
		WatchBaseline:  watchBase,
	})
}

// writeTo creates path and streams emit into it, failing fatally on any
// error so partial artifacts are never mistaken for complete ones.
func writeTo(path string, emit func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := emit(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

// buildFaultPlan assembles the flag-specified fault schedule; nil when
// no fault flags are set (fault-free resilient run).
func buildFaultPlan(crashRank int, crashClock float64, crashColl,
	dropRank, dropCount, delayRank int, delayBy time.Duration,
	chaosSeed int64, chaosN int, chaosHzn float64, procs int) *gbpolar.FaultPlan {
	if chaosSeed != 0 {
		return gbpolar.RandomFaultPlan(chaosSeed, procs, chaosN, chaosHzn)
	}
	plan := &gbpolar.FaultPlan{}
	if crashRank >= 0 {
		switch {
		case crashColl > 0:
			plan.Faults = append(plan.Faults, gbpolar.Fault{
				Kind: gbpolar.CrashAtCollective, Rank: crashRank, Nth: crashColl})
		case crashClock >= 0:
			plan.Faults = append(plan.Faults, gbpolar.Fault{
				Kind: gbpolar.CrashAtClock, Rank: crashRank, Clock: crashClock})
		}
	}
	if dropRank >= 0 {
		plan.Faults = append(plan.Faults, gbpolar.Fault{
			Kind: gbpolar.DropMessages, Rank: dropRank, Peer: -1, Tag: -1, Count: dropCount})
	}
	if delayRank >= 0 {
		plan.Faults = append(plan.Faults, gbpolar.Fault{
			Kind: gbpolar.DelayMessages, Rank: delayRank, Peer: -1, Tag: -1, Count: 1, Delay: delayBy})
	}
	if len(plan.Faults) == 0 {
		return nil
	}
	return plan
}

func loadOrGen(path string, n int, seed int64) (*gbpolar.Molecule, error) {
	if path != "" {
		return gbpolar.LoadMolecule(path)
	}
	return gbpolar.GenerateProtein(fmt.Sprintf("generated-%d", n), n, seed), nil
}
