// Command gbpol computes the GB polarization energy of a molecule with
// the octree-based algorithm of Tithi & Chowdhury (SC 2012).
//
// Usage:
//
//	gbpol -in molecule.pqr                        # shared memory, all cores
//	gbpol -gen 5000 -runner mpi -procs 12         # generated molecule, OCT_MPI
//	gbpol -gen 50000 -runner hybrid -procs 4 -threads 6 -naive
//
// Runners: shared (OCT_CILK), mpi (OCT_MPI), hybrid (OCT_MPI+CILK),
// naive (exact quadratic reference).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"gbpolar"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gbpol: ")

	var (
		inPath   = flag.String("in", "", "molecule file (.pqr or .xyzqr); empty = use -gen")
		gen      = flag.Int("gen", 5000, "atoms in the generated test protein (when -in is empty)")
		seed     = flag.Int64("seed", 1, "generator seed")
		runner   = flag.String("runner", "shared", "shared | mpi | hybrid | naive")
		procs    = flag.Int("procs", 4, "ranks P for mpi/hybrid runners")
		threads  = flag.Int("threads", 0, "threads (shared: workers, hybrid: per rank; 0 = auto)")
		epsBorn  = flag.Float64("eps-born", 0.9, "Born-radius approximation parameter")
		epsEpol  = flag.Float64("eps-epol", 0.9, "E_pol approximation parameter")
		approx   = flag.Bool("approx-math", false, "enable fast sqrt/exp kernels")
		naive    = flag.Bool("naive", false, "also run the exact reference and report the error")
		modeled  = flag.Bool("modeled", true, "distributed runners: virtual-clock accounting")
		radiiOut = flag.String("radii-out", "", "write Born radii (one per line) to this file")
	)
	flag.Parse()

	mol, err := loadOrGen(*inPath, *gen, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("molecule: %s (%d atoms, net charge %+.2f e)\n",
		mol.Name, mol.NumAtoms(), mol.TotalCharge())

	buildStart := time.Now()
	eng, err := gbpolar.NewEngine(mol, gbpolar.Options{
		EpsBorn:         *epsBorn,
		EpsEpol:         *epsEpol,
		ApproximateMath: *approx,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("surface: %d quadrature points; octrees built in %v (preprocessing)\n",
		eng.NumQuadraturePoints(), time.Since(buildStart).Round(time.Millisecond))

	var res *gbpolar.Result
	switch *runner {
	case "shared":
		th := *threads
		if th == 0 {
			th = runtime.GOMAXPROCS(0)
		}
		res, err = eng.ComputeShared(th)
	case "mpi":
		res, err = eng.ComputeDistributed(gbpolar.Cluster{
			Procs: *procs, ThreadsPerProc: 1, RanksPerNode: min(*procs, 12), Modeled: *modeled,
		})
	case "hybrid":
		th := *threads
		if th == 0 {
			th = 6
		}
		res, err = eng.ComputeDistributed(gbpolar.Cluster{
			Procs: *procs, ThreadsPerProc: th, RanksPerNode: max(1, 12/th), Modeled: *modeled,
		})
	case "naive":
		start := time.Now()
		e, radii := eng.ComputeNaive()
		res = &gbpolar.Result{Epol: e, BornRadii: radii, WallSeconds: time.Since(start).Seconds()}
	default:
		log.Fatalf("unknown runner %q (want shared|mpi|hybrid|naive)", *runner)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("E_pol = %.6g kcal/mol\n", res.Epol)
	fmt.Printf("wall time: %.4gs", res.WallSeconds)
	if res.ModelSeconds > 0 {
		fmt.Printf("   modeled time: %.4gs", res.ModelSeconds)
	}
	if res.Ops > 0 {
		fmt.Printf("   kernel ops: %.3g", res.Ops)
	}
	fmt.Println()
	if res.Report != nil {
		fmt.Println(res.Report)
	}

	if *naive && *runner != "naive" {
		e, _ := eng.ComputeNaive()
		fmt.Printf("naive reference: %.6g kcal/mol  (error %.4f%%)\n",
			e, 100*(res.Epol-e)/e)
	}

	if *radiiOut != "" {
		f, err := os.Create(*radiiOut)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range res.BornRadii {
			fmt.Fprintf(f, "%.6f\n", r)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Born radii written to %s\n", *radiiOut)
	}
}

func loadOrGen(path string, n int, seed int64) (*gbpolar.Molecule, error) {
	if path != "" {
		return gbpolar.LoadMolecule(path)
	}
	return gbpolar.GenerateProtein(fmt.Sprintf("generated-%d", n), n, seed), nil
}
