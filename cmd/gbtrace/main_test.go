package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gbpolar/internal/obs"
	"gbpolar/internal/obs/serve"
	"gbpolar/internal/obs/watch"
)

// writeTrace materializes a small two-rank timeline on disk, the way
// gbpol -trace would.
func writeTrace(t *testing.T, name string) string {
	t.Helper()
	tr := obs.NewTrace()
	tr.Adopt(obs.Event{Name: "epol", Cat: "phase", Ph: "X", Rank: 0, WallDurUS: 70_000})
	tr.Adopt(obs.Event{Name: "epol", Cat: "phase", Ph: "X", Rank: 1, WallDurUS: 90_000})
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tr.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCmd(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestReportHappyPath(t *testing.T) {
	code, out, errb := runCmd("report", writeTrace(t, "a.jsonl"))
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	if !strings.Contains(out, "epol") {
		t.Errorf("report output missing phase table:\n%s", out)
	}
}

// Unreadable, malformed, and empty traces must each exit non-zero with
// a single-line error, never a zero-event "perfect run" report.
func TestReportBadInputs(t *testing.T) {
	dir := t.TempDir()
	malformed := filepath.Join(dir, "bad.jsonl")
	os.WriteFile(malformed, []byte("{\"name\": \"epol\", truncated\n"), 0o644)
	empty := filepath.Join(dir, "empty.jsonl")
	os.WriteFile(empty, nil, 0o644)

	cases := []struct {
		name string
		path string
		want string
	}{
		{"missing", filepath.Join(dir, "nope.jsonl"), "no such file"},
		{"malformed", malformed, "bad.jsonl"},
		{"empty", empty, "no trace events"},
	}
	for _, tc := range cases {
		code, _, errb := runCmd("report", tc.path)
		if code == 0 {
			t.Errorf("%s: exit 0, want non-zero", tc.name)
		}
		if !strings.HasPrefix(errb, "gbtrace: ") || !strings.Contains(errb, tc.want) {
			t.Errorf("%s: stderr = %q, want one gbtrace line mentioning %q", tc.name, errb, tc.want)
		}
		if n := strings.Count(strings.TrimRight(errb, "\n"), "\n"); n != 0 {
			t.Errorf("%s: stderr is %d+1 lines, want exactly one", tc.name, n)
		}
	}
}

func TestDiffHappyAndBad(t *testing.T) {
	a := writeTrace(t, "a.jsonl")
	b := writeTrace(t, "b.jsonl")
	if code, _, errb := runCmd("diff", a, b); code != 0 {
		t.Fatalf("diff exit %d, stderr %q", code, errb)
	}
	code, _, errb := runCmd("diff", a, filepath.Join(t.TempDir(), "gone.jsonl"))
	if code == 0 || !strings.Contains(errb, "gbtrace: ") {
		t.Errorf("diff with missing file: exit %d, stderr %q", code, errb)
	}
}

func TestUsageAndUnknown(t *testing.T) {
	if code, _, _ := runCmd(); code != 2 {
		t.Errorf("no args exit = %d, want 2", code)
	}
	code, _, errb := runCmd("frobnicate")
	if code != 2 || !strings.Contains(errb, "unknown command") {
		t.Errorf("unknown command: exit %d, stderr %q", code, errb)
	}
	if code, _, _ := runCmd("diff", "only-one.jsonl"); code != 2 {
		t.Errorf("diff arity: exit %d, want 2", code)
	}
}

// top -once against a canned /events stream: one frame in, one rendered
// table out, exit 0.
func TestTopOnce(t *testing.T) {
	frame := serve.StreamFrame{
		Seq:    1,
		WallMS: 1234,
		Health: serve.Health{State: "running", Ready: true, Size: 2, LiveRanks: 2, Rounds: 7, Anomalies: 1},
		Metrics: obs.MetricsSnapshot{Gauges: map[string]float64{
			"health.heap_bytes":               64 << 20,
			"health.goroutines":               12,
			"rank1.health.heap_bytes":         32 << 20,
			"rank1.health.open.phase.epol_us": 83_000,
		}},
		Spans: []obs.Event{
			{Name: "epol", Cat: "phase", Ph: "X", Rank: 0, WallDurUS: 70_000},
			{Name: "epol", Cat: "phase", Ph: "X", Rank: 1, WallDurUS: 140_000},
		},
		RTT: &serve.RTTQuantiles{P50: 100, P95: 200, P99: 300},
		Verdicts: []watch.Verdict{{
			Stat: "phase.epol.wall_imbalance", Phase: "epol", Rank: 1,
			Base: 1.05, Cur: 1.33, DeltaPct: 27, TolPct: 30, Windows: 3,
		}},
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/events" {
			http.NotFound(w, r)
			return
		}
		if got := r.URL.Query().Get("interval"); got != "100ms" {
			t.Errorf("interval query = %q, want 100ms", got)
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		json.NewEncoder(w).Encode(&frame)
	}))
	defer srv.Close()

	addr := strings.TrimPrefix(srv.URL, "http://")
	code, out, errb := runCmd("top", "-once", "-interval", "100ms", addr)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	for _, want := range []string{
		"state running", "ranks 2/2", "rounds 7", "anomalies 1",
		"p95 200",      // RTT quantiles
		"epol 83ms",    // rank 1's open-span overlay
		"epol", "1.33", // phase table λ sourced from 140/105
		"phase.epol.wall_imbalance", // the verdict line
	} {
		if !strings.Contains(out, want) {
			t.Errorf("top output missing %q:\n%s", want, out)
		}
	}
	// λ for epol = 140 / ((70+140)/2) = 1.33.
	if !strings.Contains(out, "1.33") {
		t.Errorf("imbalance column wrong:\n%s", out)
	}
	// -once must not clear the terminal.
	if strings.Contains(out, "\x1b[2J") {
		t.Error("-once emitted a clear-screen escape")
	}
}

func TestTopErrors(t *testing.T) {
	// Connection refused: one-line failure, exit 1.
	code, _, errb := runCmd("top", "-once", "127.0.0.1:1")
	if code != 1 || !strings.HasPrefix(errb, "gbtrace: ") {
		t.Errorf("unreachable target: exit %d, stderr %q", code, errb)
	}

	// Non-200 from the endpoint surfaces status and body.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad interval: nope", http.StatusBadRequest)
	}))
	defer srv.Close()
	code, _, errb = runCmd("top", "-once", strings.TrimPrefix(srv.URL, "http://"))
	if code != 1 || !strings.Contains(errb, "400") || !strings.Contains(errb, "bad interval") {
		t.Errorf("bad status: exit %d, stderr %q", code, errb)
	}

	// Garbage mid-stream: one-line failure, exit 1.
	srv2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "this is not json")
	}))
	defer srv2.Close()
	code, _, errb = runCmd("top", "-once", strings.TrimPrefix(srv2.URL, "http://"))
	if code != 1 || !strings.Contains(errb, "malformed frame") {
		t.Errorf("garbage stream: exit %d, stderr %q", code, errb)
	}
}
