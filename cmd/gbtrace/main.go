// Command gbtrace analyzes JSONL trace timelines exported by gbpol
// -trace (or any obs.Trace.WriteJSONL output): per-rank/per-phase cost
// attribution on both clock axes, load-imbalance factors, the cross-rank
// critical path, collective wait attribution, stragglers, and recovery
// cost — plus run-to-run deltas and a live terminal view of a running
// cluster.
//
// Usage:
//
//	gbtrace report trace.jsonl            # phase/imbalance breakdown
//	gbtrace report -json trace.jsonl      # the full model as JSON
//	gbtrace report r0.jsonl r1.jsonl ...  # merge per-process timelines
//	gbtrace diff a.jsonl b.jsonl          # run-to-run stat deltas
//	gbtrace diff -all a.jsonl b.jsonl     # include unchanged stats
//	gbtrace top 127.0.0.1:9300            # live view of gbpol -obs-addr
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strings"
	"time"

	"gbpolar/internal/obs"
	"gbpolar/internal/obs/analyze"
	"gbpolar/internal/obs/serve"
	"gbpolar/internal/obs/watch"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command: it returns the process exit code instead of
// calling os.Exit so tests can drive every path, and every failure is a
// single "gbtrace: ..." line on stderr.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "report":
		return runReport(args[1:], stdout, stderr)
	case "diff":
		return runDiff(args[1:], stdout, stderr)
	case "top":
		return runTop(args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "gbtrace: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
}

func fail(stderr io.Writer, format string, args ...any) int {
	fmt.Fprintf(stderr, "gbtrace: "+format+"\n", args...)
	return 1
}

func runReport(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit the full analysis as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() < 1 {
		fmt.Fprintln(stderr, "usage: gbtrace report [-json] <trace.jsonl>...")
		return 2
	}
	a, err := analyzeFiles(fs.Args())
	if err != nil {
		return fail(stderr, "%v", err)
	}
	if *asJSON {
		err = a.WriteJSON(stdout)
	} else {
		err = a.Fprint(stdout)
	}
	if err != nil {
		return fail(stderr, "%v", err)
	}
	return 0
}

func runDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	all := fs.Bool("all", false, "include unchanged stats")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: gbtrace diff [-all] <a.jsonl> <b.jsonl>")
		return 2
	}
	a, err := analyzeFiles(fs.Args()[:1])
	if err != nil {
		return fail(stderr, "%v", err)
	}
	b, err := analyzeFiles(fs.Args()[1:])
	if err != nil {
		return fail(stderr, "%v", err)
	}
	rows := analyze.Diff(a, b)
	if err := analyze.FprintDiff(stdout, rows, !*all); err != nil {
		return fail(stderr, "%v", err)
	}
	return 0
}

// analyzeFiles merges one or more timelines into a single analysis.
// A coordinator's merged trace is already multi-rank, but per-process
// traces (one per worker) can be handed over together and are folded
// into one model — events carry their rank, so concatenation is the
// whole merge. An unreadable, malformed, or empty file is an error:
// silently analyzing nothing would report a perfect run.
func analyzeFiles(paths []string) (*analyze.Analysis, error) {
	var events []obs.Event
	for _, p := range paths {
		evs, err := readEvents(p)
		if err != nil {
			return nil, err
		}
		events = append(events, evs...)
	}
	return analyze.Analyze(events), nil
}

func readEvents(path string) ([]obs.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := obs.ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	evs := t.Events()
	if len(evs) == 0 {
		return nil, fmt.Errorf("%s: no trace events (not a gbpolar timeline?)", path)
	}
	return evs, nil
}

// topFrame mirrors serve.StreamFrame with the watchdog verdicts typed,
// so one json.Unmarshal per NDJSON line decodes the whole view.
type topFrame struct {
	Seq      int64               `json:"seq"`
	WallMS   float64             `json:"wall_ms"`
	Health   serve.Health        `json:"health"`
	Metrics  obs.MetricsSnapshot `json:"metrics"`
	Spans    []obs.Event         `json:"spans"`
	RTT      *serve.RTTQuantiles `json:"rtt_us"`
	Verdicts []watch.Verdict     `json:"verdicts"`
}

func runTop(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	fs.SetOutput(stderr)
	interval := fs.Duration("interval", time.Second, "refresh interval")
	once := fs.Bool("once", false, "print a single frame and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: gbtrace top [-interval 1s] [-once] <host:port>")
		return 2
	}
	addr := fs.Arg(0)
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	resp, err := http.Get(addr + "/events?interval=" + interval.String())
	if err != nil {
		return fail(stderr, "%v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fail(stderr, "%s/events: %s: %s", addr, resp.Status, strings.TrimSpace(string(body)))
	}

	view := newTopView(fs.Arg(0))
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var frame topFrame
		if err := json.Unmarshal(line, &frame); err != nil {
			return fail(stderr, "malformed frame: %v", err)
		}
		view.absorb(&frame)
		if !*once {
			fmt.Fprint(stdout, "\x1b[H\x1b[2J") // home + clear
		}
		view.render(stdout, &frame)
		if *once {
			return 0
		}
	}
	if err := sc.Err(); err != nil {
		return fail(stderr, "stream: %v", err)
	}
	fmt.Fprintln(stdout, "stream ended (run finished)")
	return 0
}

// topView folds the span windows of successive frames into cumulative
// per-rank/per-phase wall sums, the same axis the watchdog judges, so
// the λ column matches what would trip it.
type topView struct {
	target string
	// phaseWallUS[phase][rank] accumulates closed span wall time.
	phaseWallUS map[string]map[int]float64
	ranks       map[int]bool
}

func newTopView(target string) *topView {
	return &topView{
		target:      target,
		phaseWallUS: map[string]map[int]float64{},
		ranks:       map[int]bool{},
	}
}

func (v *topView) absorb(f *topFrame) {
	for _, ev := range f.Spans {
		if ev.Cat != "phase" || ev.Ph != "X" {
			continue
		}
		per := v.phaseWallUS[ev.Name]
		if per == nil {
			per = map[int]float64{}
			v.phaseWallUS[ev.Name] = per
		}
		per[ev.Rank] += ev.WallDurUS
		v.ranks[ev.Rank] = true
	}
	for r := 0; r < f.Health.Size; r++ {
		v.ranks[r] = true
	}
}

// rankGauge reads a per-rank health gauge: the coordinator's own gauges
// are un-namespaced, absorbed worker gauges carry the rank<r>. prefix.
func rankGauge(g map[string]float64, rank int, name string) (float64, bool) {
	if rank == 0 {
		val, ok := g[name]
		return val, ok
	}
	val, ok := g[fmt.Sprintf("rank%d.%s", rank, name)]
	return val, ok
}

var openGaugeRE = regexp.MustCompile(`^(?:rank(\d+)\.)?health\.open\.phase\.(.+)_us$`)

func (v *topView) render(w io.Writer, f *topFrame) {
	h := f.Health
	fmt.Fprintf(w, "gbtrace top — %s    wall %.1fs    state %s    ranks %d/%d    rounds %d",
		v.target, f.WallMS/1e3, h.State, h.LiveRanks, h.Size, h.Rounds)
	if h.Anomalies > 0 {
		fmt.Fprintf(w, "    anomalies %d", h.Anomalies)
	}
	fmt.Fprintln(w)
	if f.RTT != nil {
		fmt.Fprintf(w, "heartbeat rtt µs    p50 %.0f    p95 %.0f    p99 %.0f\n", f.RTT.P50, f.RTT.P95, f.RTT.P99)
	}
	fmt.Fprintln(w)

	ranks := make([]int, 0, len(v.ranks))
	for r := range v.ranks {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)

	// Per-rank runtime health, from the sampler gauges that rode in on
	// telemetry — plus any phase the rank is currently stuck inside.
	open := map[int]string{}
	for name, val := range f.Metrics.Gauges {
		m := openGaugeRE.FindStringSubmatch(name)
		if m == nil || val <= 0 {
			continue
		}
		r := 0
		if m[1] != "" {
			fmt.Sscanf(m[1], "%d", &r)
		}
		open[r] = fmt.Sprintf("%s %.0fms", m[2], val/1e3)
	}
	fmt.Fprintf(w, "%-6s %10s %12s %6s %14s  %s\n", "rank", "heap MB", "goroutines", "gc", "sched p95 µs", "open phase")
	for _, r := range ranks {
		heap, _ := rankGauge(f.Metrics.Gauges, r, "health.heap_bytes")
		gor, _ := rankGauge(f.Metrics.Gauges, r, "health.goroutines")
		gc, _ := rankGauge(f.Metrics.Gauges, r, "health.gc_cycles")
		lat, _ := rankGauge(f.Metrics.Gauges, r, "health.sched_latency_p95_us")
		o := open[r]
		if o == "" {
			o = "-"
		}
		fmt.Fprintf(w, "%-6d %10.1f %12.0f %6.0f %14.1f  %s\n", r, heap/(1<<20), gor, gc, lat, o)
	}
	fmt.Fprintln(w)

	// Per-phase cumulative wall attribution, largest first.
	type phaseRow struct {
		name                   string
		totalUS, meanUS, maxUS float64
		maxRank                int
		lambda                 float64
	}
	var rows []phaseRow
	for name, per := range v.phaseWallUS {
		row := phaseRow{name: name, maxRank: -1}
		for r, us := range per {
			row.totalUS += us
			if us > row.maxUS || (us == row.maxUS && (row.maxRank < 0 || r < row.maxRank)) {
				row.maxUS, row.maxRank = us, r
			}
		}
		row.meanUS = row.totalUS / float64(len(per))
		if row.meanUS > 0 {
			row.lambda = row.maxUS / row.meanUS
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].totalUS != rows[j].totalUS {
			return rows[i].totalUS > rows[j].totalUS
		}
		return rows[i].name < rows[j].name
	})
	fmt.Fprintf(w, "%-12s %12s %10s %10s %9s %6s\n", "phase", "total ms", "mean ms", "max ms", "max rank", "λ")
	for _, row := range rows {
		fmt.Fprintf(w, "%-12s %12.1f %10.1f %10.1f %9d %6.2f\n",
			row.name, row.totalUS/1e3, row.meanUS/1e3, row.maxUS/1e3, row.maxRank, row.lambda)
	}

	if len(f.Verdicts) > 0 {
		fmt.Fprintf(w, "\nwatchdog: %d anomal", len(f.Verdicts))
		if len(f.Verdicts) == 1 {
			fmt.Fprintln(w, "y")
		} else {
			fmt.Fprintln(w, "ies")
		}
		for _, vd := range f.Verdicts {
			fmt.Fprintf(w, "  %s\n", vd.String())
		}
	}
}

func usage(w io.Writer) {
	fmt.Fprintf(w, `gbtrace — trace analytics for gbpolar timelines

commands:
  report [-json] <trace.jsonl>...  per-phase wall/virtual breakdown, imbalance,
                                   critical path, collective waits, recovery
                                   cost; multiple files are merged into one
                                   multi-process timeline
  diff [-all] <a.jsonl> <b.jsonl>  run-to-run stat deltas, biggest movers first
  top [-interval 1s] [-once] <host:port>
                                   live terminal view of a running cluster:
                                   per-rank health, per-phase imbalance, RTT
                                   quantiles, watchdog verdicts — point it at
                                   gbpol's -obs-addr

produce traces with: gbpol -gen 5000 -runner resilient -procs 4 -trace run.jsonl
watch a live run with: gbpol ... -obs-addr :9300 & gbtrace top 127.0.0.1:9300
`)
}
