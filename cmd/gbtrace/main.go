// Command gbtrace analyzes JSONL trace timelines exported by gbpol
// -trace (or any obs.Trace.WriteJSONL output): per-rank/per-phase cost
// attribution on both clock axes, load-imbalance factors, the cross-rank
// critical path, collective wait attribution, stragglers, and recovery
// cost — plus run-to-run deltas.
//
// Usage:
//
//	gbtrace report trace.jsonl            # phase/imbalance breakdown
//	gbtrace report -json trace.jsonl      # the full model as JSON
//	gbtrace report r0.jsonl r1.jsonl ...  # merge per-process timelines
//	gbtrace diff a.jsonl b.jsonl          # run-to-run stat deltas
//	gbtrace diff -all a.jsonl b.jsonl     # include unchanged stats
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gbpolar/internal/obs"
	"gbpolar/internal/obs/analyze"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gbtrace: ")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "report":
		fs := flag.NewFlagSet("report", flag.ExitOnError)
		asJSON := fs.Bool("json", false, "emit the full analysis as JSON")
		fs.Parse(args[1:])
		if fs.NArg() < 1 {
			log.Fatal("usage: gbtrace report [-json] <trace.jsonl>...")
		}
		a := analyzeFiles(fs.Args())
		var err error
		if *asJSON {
			err = a.WriteJSON(os.Stdout)
		} else {
			err = a.Fprint(os.Stdout)
		}
		if err != nil {
			log.Fatal(err)
		}
	case "diff":
		fs := flag.NewFlagSet("diff", flag.ExitOnError)
		all := fs.Bool("all", false, "include unchanged stats")
		fs.Parse(args[1:])
		if fs.NArg() != 2 {
			log.Fatal("usage: gbtrace diff [-all] <a.jsonl> <b.jsonl>")
		}
		rows := analyze.Diff(analyzeFile(fs.Arg(0)), analyzeFile(fs.Arg(1)))
		if err := analyze.FprintDiff(os.Stdout, rows, !*all); err != nil {
			log.Fatal(err)
		}
	default:
		usage()
		os.Exit(2)
	}
}

func analyzeFile(path string) *analyze.Analysis {
	return analyze.Analyze(readEvents(path))
}

// analyzeFiles merges one or more timelines into a single analysis.
// A coordinator's merged trace is already multi-rank, but per-process
// traces (one per worker) can be handed over together and are folded
// into one model — events carry their rank, so concatenation is the
// whole merge.
func analyzeFiles(paths []string) *analyze.Analysis {
	var events []obs.Event
	for _, p := range paths {
		events = append(events, readEvents(p)...)
	}
	return analyze.Analyze(events)
}

func readEvents(path string) []obs.Event {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	t, err := obs.ReadJSONL(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return t.Events()
}

func usage() {
	fmt.Fprintf(os.Stderr, `gbtrace — trace analytics for gbpolar timelines

commands:
  report [-json] <trace.jsonl>...  per-phase wall/virtual breakdown, imbalance,
                                   critical path, collective waits, recovery
                                   cost; multiple files are merged into one
                                   multi-process timeline
  diff [-all] <a.jsonl> <b.jsonl>  run-to-run stat deltas, biggest movers first

produce traces with: gbpol -gen 5000 -runner resilient -procs 4 -trace run.jsonl
`)
}
