// Command genmol writes synthetic molecules to disk: single proteins,
// ligands, virus-shell capsids, or the whole ZDock-like benchmark suite.
//
// Usage:
//
//	genmol -kind protein -atoms 5000 -out prot.pqr
//	genmol -kind capsid -atoms 100000 -inner 120 -outer 145 -out shell.xyzqr
//	genmol -kind cmv -scale 0.1 -out cmv.pqr
//	genmol -kind suite -dir ./suite      # 84 PQR files
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"

	"gbpolar/internal/molecule"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("genmol: ")

	var (
		kind  = flag.String("kind", "protein", "protein | ligand | capsid | cmv | btv | suite")
		atoms = flag.Int("atoms", 5000, "atom count (protein/ligand/capsid)")
		inner = flag.Float64("inner", 120, "capsid inner radius (Å)")
		outer = flag.Float64("outer", 145, "capsid outer radius (Å)")
		scale = flag.Float64("scale", 0.02, "cmv/btv scale factor (1 = paper size)")
		seed  = flag.Int64("seed", 1, "generator seed")
		out   = flag.String("out", "molecule.pqr", "output file (.pqr or .xyzqr)")
		dir   = flag.String("dir", "suite", "output directory for -kind suite")
	)
	flag.Parse()

	switch *kind {
	case "suite":
		mols := molecule.GenZDockLikeSuite(*seed)
		for _, m := range mols {
			path := filepath.Join(*dir, m.Name+".pqr")
			if err := molecule.SaveFile(path, m); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("wrote %d proteins to %s/\n", len(mols), *dir)
		return
	case "protein":
		save(molecule.GenProtein("protein", *atoms, *seed), *out)
	case "ligand":
		save(molecule.GenLigand("ligand", *atoms, *seed), *out)
	case "capsid":
		save(molecule.GenCapsid("capsid", *atoms, *inner, *outer, *seed), *out)
	case "cmv":
		save(molecule.CMVAnalogue(*scale, *seed), *out)
	case "btv":
		save(molecule.BTVAnalogue(*scale, *seed), *out)
	default:
		log.Fatalf("unknown kind %q", *kind)
	}
}

func save(m *molecule.Molecule, path string) {
	if err := molecule.SaveFile(path, m); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d atoms) to %s\n", m.Name, m.NumAtoms(), path)
}
