// Command gbbench regenerates the tables and figures of the paper's
// evaluation section (Table I, Table II, Figures 5–11).
//
// Usage:
//
//	gbbench -exp fig8                 # one experiment
//	gbbench -exp all                  # everything, paper order
//	gbbench -exp fig11 -scale 0.1     # bigger CMV analogue
//	gbbench -exp fig6 -reps 20        # the paper's repetition count
//	gbbench -exp fig9 -csv            # machine-readable output
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gbpolar/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gbbench: ")

	var (
		exp    = flag.String("exp", "all", "experiment id (tableI, tableII, fig5..fig11) or 'all'")
		scale  = flag.Float64("scale", 0.02, "virus-shell scale factor (1 = paper's full CMV/BTV)")
		stride = flag.Int("stride", 7, "ZDock-like suite stride (1 = all 84 proteins)")
		reps   = flag.Int("reps", 5, "repetitions for min/max experiments (paper: 20)")
		seed   = flag.Int64("seed", 1, "generator seed")
		csv    = flag.Bool("csv", false, "emit CSV instead of aligned text")
		list   = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := bench.Config{
		Seed:        *seed,
		Scale:       *scale,
		SuiteStride: *stride,
		Repetitions: *reps,
	}

	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.Registry()
	} else {
		e, err := bench.ByID(*exp)
		if err != nil {
			log.Fatal(err)
		}
		exps = []bench.Experiment{e}
	}

	for _, e := range exps {
		tables, err := e.Run(cfg)
		if err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		for _, t := range tables {
			var err error
			if *csv {
				err = t.CSV(os.Stdout)
			} else {
				err = t.Fprint(os.Stdout)
			}
			if err != nil {
				log.Fatal(err)
			}
		}
	}
}
