// Command gbbench regenerates the tables and figures of the paper's
// evaluation section (Table I, Table II, Figures 5–11).
//
// Usage:
//
//	gbbench -exp fig8                 # one experiment
//	gbbench -exp all                  # everything, paper order
//	gbbench -exp fig11 -scale 0.1     # bigger CMV analogue
//	gbbench -exp fig6 -reps 20        # the paper's repetition count
//	gbbench -exp fig9 -csv            # machine-readable output
//	gbbench -baseline results/baseline.json   # seed the perf gate
//	gbbench -compare results/baseline.json    # fail (exit 1) on regression
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"gbpolar/internal/bench"
	"gbpolar/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gbbench: ")

	var (
		exp    = flag.String("exp", "all", "experiment id (tableI, tableII, fig5..fig11) or 'all'")
		scale  = flag.Float64("scale", 0.02, "virus-shell scale factor (1 = paper's full CMV/BTV)")
		stride = flag.Int("stride", 7, "ZDock-like suite stride (1 = all 84 proteins)")
		reps   = flag.Int("reps", 5, "repetitions for min/max experiments (paper: 20)")
		seed   = flag.Int64("seed", 1, "generator seed")
		csv    = flag.Bool("csv", false, "emit CSV instead of aligned text")
		list   = flag.Bool("list", false, "list available experiments and exit")

		baselineOut = flag.String("baseline", "", "measure the perf-gate workload and snapshot a baseline JSON to this file (skips -exp)")
		compareWith = flag.String("compare", "", "measure the perf-gate workload and compare against this baseline; exit 1 on any regression (skips -exp)")
		gateReps    = flag.Int("gate-reps", 5, "median-of-N repetitions for -baseline/-compare")
		gateAtoms   = flag.Int("gate-atoms", 5000, "gate workload size (atoms)")

		outDir     = flag.String("out", "", "also write BENCH_<id>.json tables, cluster reports and a MANIFEST.json to this directory")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	if *baselineOut != "" || *compareWith != "" {
		runGate(*baselineOut, *compareWith, *gateAtoms, *gateReps, *seed)
		return
	}

	cfg := bench.Config{
		Seed:        *seed,
		Scale:       *scale,
		SuiteStride: *stride,
		Repetitions: *reps,
	}

	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.Registry()
	} else {
		e, err := bench.ByID(*exp)
		if err != nil {
			log.Fatal(err)
		}
		exps = []bench.Experiment{e}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		man := obs.NewManifest("gbbench", *seed, map[string]any{
			"exp": *exp, "scale": *scale, "stride": *stride, "reps": *reps,
		})
		if err := man.WriteFile(filepath.Join(*outDir, "MANIFEST.json")); err != nil {
			log.Fatal(err)
		}
	}

	for _, e := range exps {
		tables, err := e.Run(cfg)
		if err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		for _, t := range tables {
			var err error
			if *csv {
				err = t.CSV(os.Stdout)
			} else {
				err = t.Fprint(os.Stdout)
			}
			if err != nil {
				log.Fatal(err)
			}
			if *outDir != "" {
				if err := writeTable(*outDir, t); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
}

// runGate is the perf regression gate (`make perfgate`): -baseline
// measures the gate workload and snapshots it; -compare re-measures and
// exits 1 when any tracked stat regresses beyond its noise-aware
// tolerance (DESIGN.md §9).
func runGate(baselineOut, compareWith string, atoms, reps int, seed int64) {
	measure := func() *bench.Baseline {
		fmt.Printf("perf gate: measuring %d reps of the gate workload (%d atoms, 4 ranks, 1 crash)...\n",
			reps, atoms)
		samples, err := bench.GateSamples(atoms, reps, seed)
		if err != nil {
			log.Fatal(err)
		}
		return bench.BuildBaseline(samples, atoms, seed)
	}
	if baselineOut != "" {
		b := measure()
		if err := b.WriteFile(baselineOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("perf gate: baseline with %d stats written to %s\n", len(b.Stats), baselineOut)
		return
	}
	base, err := bench.ReadBaseline(compareWith)
	if err != nil {
		log.Fatal(err)
	}
	if base.Atoms != atoms || base.Seed != seed {
		log.Fatalf("baseline %s was measured at %d atoms / seed %d, current flags say %d / %d — re-seed with -baseline",
			compareWith, base.Atoms, base.Seed, atoms, seed)
	}
	rows, ok := bench.CompareBaselines(base, measure())
	if err := bench.FprintGate(os.Stdout, rows, false); err != nil {
		log.Fatal(err)
	}
	if !ok {
		log.Fatal("perf gate FAILED: stats regressed beyond tolerance (see table above)")
	}
	fmt.Printf("perf gate: OK against %s (%d stats, measured at %s)\n",
		compareWith, len(base.Stats), base.Created)
}

// writeTable archives one result table (and, when present, the cluster
// report behind it) under dir.
func writeTable(dir string, t *bench.Table) error {
	f, err := os.Create(filepath.Join(dir, "BENCH_"+t.ID+".json"))
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if t.Report == nil {
		return nil
	}
	rf, err := os.Create(filepath.Join(dir, "BENCH_"+t.ID+".report.json"))
	if err != nil {
		return err
	}
	if err := t.Report.WriteJSON(rf); err != nil {
		rf.Close()
		return err
	}
	return rf.Close()
}
