// Package gbpolar computes the Generalized Born (GB) polarization energy
// of molecules with the octree-based hierarchical O(M log M) algorithm of
// Tithi & Chowdhury, "Polarization Energy on a Cluster of Multicores"
// (SC 2012): a Greengard–Rokhlin-style near–far decomposition over atoms
// and surface quadrature points, surface-based r⁶ Born radii, and three
// execution models — shared-memory work stealing (OCT_CILK), distributed
// message passing (OCT_MPI) and hybrid (OCT_MPI+CILK).
//
// Quick start:
//
//	mol := gbpolar.GenerateProtein("demo", 5000, 42)
//	eng, err := gbpolar.NewEngine(mol, gbpolar.Options{})
//	if err != nil { ... }
//	res, err := eng.Compute()           // shared-memory, all cores
//	fmt.Println(res.Epol, "kcal/mol")
//
// For cluster execution use Engine.ComputeDistributed with a Cluster
// layout; for the exact quadratic reference use Engine.ComputeNaive.
package gbpolar

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"gbpolar/internal/bench/gate"
	"gbpolar/internal/cluster"
	"gbpolar/internal/core"
	"gbpolar/internal/geom"
	"gbpolar/internal/mathx"
	"gbpolar/internal/molecule"
	"gbpolar/internal/obs"
	"gbpolar/internal/obs/serve"
	"gbpolar/internal/obs/watch"
	"gbpolar/internal/octree"
	"gbpolar/internal/surface"
)

// Molecule re-exports the molecular model.
type Molecule = molecule.Molecule

// Atom re-exports the atom type.
type Atom = molecule.Atom

// Vec3 re-exports the vector type.
type Vec3 = geom.Vec3

// Transform re-exports rigid transforms (for docking pose scans).
type Transform = geom.Transform

// Surface re-exports the sampled molecular surface.
type Surface = surface.Surface

// Result is the outcome of an energy computation.
type Result = core.Result

// Options configures an Engine.
type Options struct {
	// EpsBorn is the Born-radius approximation parameter (default 0.9,
	// the paper's headline setting). Smaller = more accurate, slower.
	EpsBorn float64
	// EpsEpol is the polarization-energy approximation parameter
	// (default 0.9).
	EpsEpol float64
	// SolventDielectric defaults to 80 (water).
	SolventDielectric float64
	// ApproximateMath enables the paper's fast sqrt/exp kernels
	// (≈1.4× faster, shifts the energy by a few percent).
	ApproximateMath bool
	// Precision selects the compiled-kernel arithmetic tier: "" or
	// "exact" (float64, today's semantics), "lanes" (width-4 laned
	// approximate float64 — the paper's approximate-math accuracy class,
	// vectorized), or "f32" (float32 lanes with float64 row reduction,
	// ≤1e-4 relative error budget). See core.Precision.
	Precision string
	// SurfaceLevel overrides the icosphere subdivision level (0 = auto).
	SurfaceLevel int
	// QuadratureDegree selects the Dunavant rule, 1–5 (0 = degree 2).
	QuadratureDegree int
	// LeafCap is the octree leaf capacity (0 = 8).
	LeafCap int
	// FarOrder raises the far-field multipole order: 0 (default) is the
	// paper's pseudo-particle far field, 1 adds dipole corrections to
	// every far interaction, 2 adds quadrupoles AND loosens the Born
	// opening criterion to consolidate the far lists at equal certified
	// error (core/farorder.go).
	FarOrder int
	// Builder selects the octree construction algorithm: "recursive"
	// (the reference top-down builder, the default) or "morton" (the
	// Morton-key radix build — same tree, faster cold start, and the
	// prerequisite for incremental list repair after atom motion).
	Builder string
}

func (o Options) params() core.Params {
	p := core.DefaultParams()
	if o.EpsBorn > 0 {
		p.EpsBorn = o.EpsBorn
	}
	if o.EpsEpol > 0 {
		p.EpsEpol = o.EpsEpol
	}
	if o.SolventDielectric > 1 {
		p.EpsSolv = o.SolventDielectric
	}
	if o.ApproximateMath {
		p.Math = mathx.Approximate
	}
	if o.LeafCap > 0 {
		p.LeafCap = o.LeafCap
	}
	if o.FarOrder > 0 {
		p.FarOrder = o.FarOrder
	}
	return p
}

// KernelISA reports the instruction set the non-exact precision tiers'
// kernels execute on ("avx2+fma" or "portable").
func KernelISA() string { return core.KernelISA() }

// Observer re-exports the observability bundle: a hierarchical trace
// (per-rank phase and collective spans on both wall and virtual clocks,
// exportable as JSONL or chrome://tracing JSON) plus an allocation-free
// metrics registry. See internal/obs and DESIGN.md §8.
type Observer = obs.Obs

// NewObserver returns an observer with tracing and metrics enabled.
func NewObserver() *Observer { return obs.New() }

// FlightRecorder re-exports the crash flight recorder: a fixed-size
// lock-free ring of the most recent trace events, dumped to a
// timestamped JSONL file on death detection, degradation, panic, or
// SIGTERM. See DESIGN.md §13.
type FlightRecorder = obs.FlightRecorder

// DefaultFlightEvents is the default flight-recorder ring capacity.
const DefaultFlightEvents = obs.DefaultFlightEvents

// NewFlightRecorder returns a flight recorder keeping the last size
// events (0 = DefaultFlightEvents), dumping into dir. Attach it with
// Observer.AttachFlight.
func NewFlightRecorder(size int, dir string) *FlightRecorder {
	return obs.NewFlightRecorder(size, dir)
}

// ObsServer re-exports the live observability endpoint (/metrics in
// Prometheus text format, /healthz, /readyz, /debug/pprof).
type ObsServer = serve.Server

// ServeObs starts the live observability endpoint for o on addr
// (host:port; port 0 binds an ephemeral one — read it back from
// Addr()). For net runs prefer NetRun.ObsAddr, which also wires
// membership-backed health probes.
func ServeObs(addr string, o *Observer) (*ObsServer, error) {
	return serve.Start(addr, o, nil)
}

// Manifest re-exports the run manifest (config, seed, git describe, host
// info) that makes results/ artifacts reproducible.
type Manifest = obs.Manifest

// NewManifest collects host and revision info for the given tool, seed
// and config.
func NewManifest(tool string, seed int64, config map[string]any) *Manifest {
	return obs.NewManifest(tool, seed, config)
}

// Engine holds a molecule, its sampled surface and the prebuilt octrees.
// Building an Engine is the preprocessing step; Compute* calls are the
// timed energy evaluations and can be repeated (e.g. per docking pose).
type Engine struct {
	sys  *core.System
	mol  *Molecule
	surf *Surface
	obs  *obs.Obs
}

// Observe attaches an observer to all subsequent Compute* calls: phase
// and collective spans land on its trace, pair counts, batch histograms,
// steal counts and fault events on its metrics. Passing nil detaches
// (the default — disabled observability costs one branch per phase).
func (e *Engine) Observe(o *Observer) { e.obs = o }

// NewEngine samples the molecular surface and builds both octrees.
func NewEngine(mol *Molecule, opts Options) (*Engine, error) {
	if mol == nil || mol.NumAtoms() == 0 {
		return nil, fmt.Errorf("gbpolar: molecule is empty")
	}
	if err := mol.Validate(); err != nil {
		return nil, fmt.Errorf("gbpolar: %w", err)
	}
	surf, err := surface.ForMolecule(mol, surface.Options{
		SubdivisionLevel: opts.SurfaceLevel,
		QuadratureDegree: opts.QuadratureDegree,
	})
	if err != nil {
		return nil, fmt.Errorf("gbpolar: %w", err)
	}
	return NewEngineWithSurface(mol, surf, opts)
}

// NewEngineWithSurface builds an Engine from a pre-sampled surface
// (e.g. one loaded from disk or shared between parameter sweeps).
func NewEngineWithSurface(mol *Molecule, surf *Surface, opts Options) (*Engine, error) {
	params := opts.params()
	if opts.Builder != "" {
		b, err := octree.ParseBuilder(opts.Builder)
		if err != nil {
			return nil, fmt.Errorf("gbpolar: %w", err)
		}
		params.Builder = b
	}
	if opts.Precision != "" {
		prec, err := core.ParsePrecision(opts.Precision)
		if err != nil {
			return nil, fmt.Errorf("gbpolar: %w", err)
		}
		params.Precision = prec
	}
	sys, err := core.NewSystem(mol, surf, params)
	if err != nil {
		return nil, fmt.Errorf("gbpolar: %w", err)
	}
	return &Engine{sys: sys, mol: mol, surf: surf}, nil
}

// Molecule returns the engine's molecule.
func (e *Engine) Molecule() *Molecule { return e.mol }

// Surface returns the engine's sampled surface.
func (e *Engine) Surface() *Surface { return e.surf }

// NumQuadraturePoints returns the surface sample count.
func (e *Engine) NumQuadraturePoints() int { return e.surf.NumPoints() }

// Compute runs the shared-memory (OCT_CILK) algorithm on all cores.
func (e *Engine) Compute() (*Result, error) {
	return e.ComputeShared(runtime.GOMAXPROCS(0))
}

// ComputeShared runs the shared-memory algorithm on `threads`
// work-stealing workers.
func (e *Engine) ComputeShared(threads int) (*Result, error) {
	return core.RunShared(e.sys, core.SharedOptions{Threads: threads, Obs: e.obs})
}

// Cluster describes a distributed run layout.
type Cluster struct {
	// Procs is the number of ranks (P).
	Procs int
	// ThreadsPerProc is the intra-rank worker count (p); 1 = pure
	// distributed (OCT_MPI), >1 = hybrid (OCT_MPI+CILK).
	ThreadsPerProc int
	// RanksPerNode places ranks on modeled 12-core nodes (0 = all on
	// one node).
	RanksPerNode int
	// Nodes is the modeled machine size (0 = just enough nodes).
	Nodes int
	// Modeled selects virtual-clock accounting (reproducible replay of
	// large clusters); false measures wall-clock.
	Modeled bool
}

// ComputeDistributed runs the distributed/hybrid algorithm (Figure 4 of
// the paper).
func (e *Engine) ComputeDistributed(cl Cluster) (*Result, error) {
	if cl.Procs <= 0 {
		return nil, fmt.Errorf("gbpolar: Cluster.Procs must be positive")
	}
	if cl.ThreadsPerProc <= 0 {
		cl.ThreadsPerProc = 1
	}
	if cl.RanksPerNode <= 0 {
		cl.RanksPerNode = cl.Procs
	}
	if cl.Nodes <= 0 {
		cl.Nodes = (cl.Procs + cl.RanksPerNode - 1) / cl.RanksPerNode
	}
	mode := cluster.Modeled
	if !cl.Modeled {
		mode = cluster.Real
	}
	return core.RunDistributed(e.sys, cluster.Config{
		Procs:          cl.Procs,
		ThreadsPerProc: cl.ThreadsPerProc,
		RanksPerNode:   cl.RanksPerNode,
		Topology:       cluster.Lonestar4(cl.Nodes),
		Mode:           mode,
		Obs:            e.obs,
	})
}

// FaultPlan re-exports the cluster substrate's deterministic fault
// schedule (rank crashes, message drops and delays).
type FaultPlan = cluster.FaultPlan

// Fault re-exports one injected fault.
type Fault = cluster.Fault

// FaultReport re-exports the fault layer's accounting (injections,
// detections, retries, recomputed work, recovery time).
type FaultReport = cluster.FaultReport

// Fault kinds, re-exported for building FaultPlans.
const (
	CrashAtClock      = cluster.CrashAtClock
	CrashAtCollective = cluster.CrashAtCollective
	DropMessages      = cluster.DropMessages
	DelayMessages     = cluster.DelayMessages
)

// RandomFaultPlan re-exports the deterministic chaos-schedule generator.
func RandomFaultPlan(seed int64, procs, n int, horizon float64) *FaultPlan {
	return cluster.RandomFaultPlan(seed, procs, n, horizon)
}

// ComputeDistributedResilient runs the distributed algorithm under the
// given fault plan with self-healing recovery: surviving ranks detect
// crashed peers, deterministically re-divide their work and redo only
// the lost part — completing with the same E_pol (to 1e-12 relative) as a
// fault-free run, or degrading to the shared-memory runner when fewer
// than two ranks survive. The result's Report.Faults records what was
// injected, detected and recovered. A nil plan runs fault-free.
func (e *Engine) ComputeDistributedResilient(cl Cluster, plan *FaultPlan) (*Result, error) {
	if cl.Procs <= 0 {
		return nil, fmt.Errorf("gbpolar: Cluster.Procs must be positive")
	}
	if cl.ThreadsPerProc <= 0 {
		cl.ThreadsPerProc = 1
	}
	if cl.RanksPerNode <= 0 {
		cl.RanksPerNode = cl.Procs
	}
	if cl.Nodes <= 0 {
		cl.Nodes = (cl.Procs + cl.RanksPerNode - 1) / cl.RanksPerNode
	}
	return core.RunDistributedResilient(e.sys, cluster.Config{
		Procs:          cl.Procs,
		ThreadsPerProc: cl.ThreadsPerProc,
		RanksPerNode:   cl.RanksPerNode,
		Topology:       cluster.Lonestar4(cl.Nodes),
		Mode:           cluster.Modeled,
		Faults:         plan,
		Obs:            e.obs,
	})
}

// SaveSnapshot writes a versioned, parameter-stamped binary checkpoint
// of the engine's full compiled state — molecule, surface, both octrees
// and (when already compiled) the interaction lists — with a CRC-32C
// trailer. A snapshot restores with NewEngineFromSnapshot without
// resampling, rebuilding or recompiling anything.
func (e *Engine) SaveSnapshot(path string) error {
	return core.SaveSnapshot(path, e.sys)
}

// NewEngineFromSnapshot restores an Engine from a SaveSnapshot file.
// Corruption, truncation, a future format version and a parameter
// mismatch each fail with their typed sentinel (core.ErrSnapshotCorrupt,
// core.ErrSnapshotVersion, core.ErrSnapshotParams).
func NewEngineFromSnapshot(path string) (*Engine, error) {
	sys, err := core.LoadSnapshot(path, core.Params{})
	if err == nil {
		return &Engine{sys: sys, mol: sys.Mol, surf: sys.Surf}, nil
	}
	// The zero Params fingerprint matches only the default configuration;
	// for any other stamp, decode without the caller-side check (the
	// snapshot's own stamp self-consistency was already verified).
	sys, derr := core.LoadSnapshotAnyParams(path)
	if derr != nil {
		return nil, fmt.Errorf("gbpolar: %w", derr)
	}
	return &Engine{sys: sys, mol: sys.Mol, surf: sys.Surf}, nil
}

// NetRun configures a real multi-process cluster run over TCP: the
// coordinator process rendezvouses Procs ranks (itself computing as rank
// 0), publishes a membership file and a checkpoint that worker processes
// load, and survives real worker deaths — a SIGKILLed rank's rows are
// re-divided among survivors, and a respawned rank is re-admitted at the
// next collective boundary. See DESIGN.md §12.
type NetRun struct {
	// Procs is the rank count; Procs-1 worker processes join over TCP.
	Procs int
	// ThreadsPerProc is the intra-rank worker count (0 = 1).
	ThreadsPerProc int
	// ListenAddr binds the coordinator ("" = ephemeral loopback port).
	ListenAddr string
	// MembershipPath is where the cluster bootstrap JSON is published.
	MembershipPath string
	// CheckpointPath is where the engine snapshot is written; workers
	// load it instead of rebuilding, and a restarted coordinator resumes
	// from it without recompiling the interaction lists.
	CheckpointPath string
	// Spawn, when non-nil, launches the worker process for a rank.
	Spawn func(rank int) error
	// RespawnDead relaunches each crashed worker once via Spawn.
	RespawnDead bool
	// StallTimeout bounds every collective round (0 = 2 minutes).
	StallTimeout time.Duration
	// ObsAddr, when non-empty, serves the live observability endpoint
	// (/metrics, /healthz, /readyz, /debug/pprof) on this address; the
	// bound address is published in the membership file. See DESIGN.md
	// §13.
	ObsAddr string
	// FlightDir, when non-empty, attaches a crash flight recorder to the
	// engine's observer: the most recent trace events are dumped to a
	// timestamped JSONL file here on death detection, degradation, or
	// panic.
	FlightDir string
	// WatchBaseline, when non-empty, loads a perf-gate baseline
	// (results/baseline.json) and runs the anomaly watchdog against the
	// live merged timeline: a phase imbalance outside the baseline's
	// tolerance envelope for several consecutive windows flips /healthz
	// to "anomalous" and dumps the flight recorder tagged with the
	// offending phase and rank. See DESIGN.md §14.
	WatchBaseline string
}

// ComputeNet runs the distributed algorithm across real OS processes
// (see NetRun). Cancelling ctx aborts the run. When too few ranks
// survive the run degrades to the shared-memory runner and reports the
// reason in Result.Report.Faults.
func (e *Engine) ComputeNet(ctx context.Context, nr NetRun) (*Result, error) {
	opts := core.NetOptions{
		Procs:          nr.Procs,
		Threads:        nr.ThreadsPerProc,
		ListenAddr:     nr.ListenAddr,
		MembershipPath: nr.MembershipPath,
		CheckpointPath: nr.CheckpointPath,
		Spawn:          nr.Spawn,
		RespawnDead:    nr.RespawnDead,
		StallTimeout:   nr.StallTimeout,
		ObsAddr:        nr.ObsAddr,
		FlightDir:      nr.FlightDir,
		Obs:            e.obs,
	}
	if nr.WatchBaseline != "" {
		base, err := gate.ReadBaseline(nr.WatchBaseline)
		if err != nil {
			return nil, fmt.Errorf("gbpolar: watch baseline: %w", err)
		}
		opts.Watch = &watch.Config{Baseline: base}
	}
	return core.RunNetCoordinator(ctx, e.sys, opts)
}

// NetWorkerOptions re-exports the worker-process configuration.
type NetWorkerOptions = core.NetWorkerOptions

// RunNetWorker is the worker-process entry point for ComputeNet runs:
// it loads the membership file and checkpoint published by the
// coordinator, joins as the given rank and computes until the protocol
// completes (or this process is the one the chaos hook kills). It
// reports whether this rank completed the protocol.
func RunNetWorker(membershipPath string, rank int, opts NetWorkerOptions) (completed bool, err error) {
	out, err := core.RunNetWorker(membershipPath, rank, opts)
	if err != nil {
		return false, err
	}
	return out.Completed, nil
}

// DynStats re-exports the inter-rank stealing statistics.
type DynStats = core.DynStats

// ComputeDistributedDynamic runs the distributed algorithm with
// inter-rank work stealing in the energy phase — the explicit dynamic
// load balancing the paper's Section VI names as future work. It absorbs
// stragglers (slow or noisy nodes) that the static node-based division
// cannot.
func (e *Engine) ComputeDistributedDynamic(cl Cluster) (*Result, *DynStats, error) {
	if cl.Procs <= 0 {
		return nil, nil, fmt.Errorf("gbpolar: Cluster.Procs must be positive")
	}
	if cl.ThreadsPerProc <= 0 {
		cl.ThreadsPerProc = 1
	}
	if cl.RanksPerNode <= 0 {
		cl.RanksPerNode = cl.Procs
	}
	if cl.Nodes <= 0 {
		cl.Nodes = (cl.Procs + cl.RanksPerNode - 1) / cl.RanksPerNode
	}
	return core.RunDistributedDynamic(e.sys, cluster.Config{
		Procs:          cl.Procs,
		ThreadsPerProc: cl.ThreadsPerProc,
		RanksPerNode:   cl.RanksPerNode,
		Topology:       cluster.Lonestar4(cl.Nodes),
		Mode:           cluster.Modeled,
		Obs:            e.obs,
	})
}

// ComputeNaive evaluates the exact quadratic reference (Equations 2 and
// 4 of the paper) — the accuracy baseline. It is Θ(M·N + M²).
func (e *Engine) ComputeNaive() (epol float64, bornRadii []float64) {
	return core.NaiveEnergy(e.mol, e.surf, e.sys.Params.EpsSolv, e.sys.Params.Math)
}

// Gradient re-exports the force-evaluation result.
type Gradient = core.GradientResult

// ComputeGradient evaluates E_pol and its exact gradient ∂E/∂x under the
// rigid-cavity approximation (the sampled surface held fixed) — the
// force the paper's future-work MD integration needs between boundary
// rebuilds. Direct Θ(M·N + M²) summation.
func (e *Engine) ComputeGradient() *Gradient {
	return core.NaiveGradient(e.mol, e.surf, e.sys.Params.EpsSolv, e.sys.Params.Math)
}

// Repose rigidly moves the molecule, surface and both octrees without
// rebuilding anything — the paper's docking workload (Section IV.C,
// Step 1: "we can move the same octree to different positions or rotate
// it ... by multiplying with proper transformation matrices"). Rigid
// motion preserves the near/far classification, so the engine's compiled
// interaction lists stay warm across poses: a pose scan pays the
// traversal cost once, then every Compute* is a pure list sweep.
func (e *Engine) Repose(t Transform) {
	e.mol.ApplyTransform(t)
	e.surf.ApplyTransform(t)
	e.sys.ApplyRigidTransform(t)
}

// GenerateProtein deterministically generates a packed protein-like test
// molecule (see internal/molecule for the model).
func GenerateProtein(name string, atoms int, seed int64) *Molecule {
	return molecule.GenProtein(name, atoms, seed)
}

// GenerateLigand generates a small drug-like molecule.
func GenerateLigand(name string, atoms int, seed int64) *Molecule {
	return molecule.GenLigand(name, atoms, seed)
}

// GenerateCapsid generates a virus-shell-like molecule.
func GenerateCapsid(name string, atoms int, innerR, outerR float64, seed int64) *Molecule {
	return molecule.GenCapsid(name, atoms, innerR, outerR, seed)
}

// LoadMolecule reads a PQR or XYZQR file.
func LoadMolecule(path string) (*Molecule, error) { return molecule.LoadFile(path) }

// SaveMolecule writes a PQR or XYZQR file.
func SaveMolecule(path string, m *Molecule) error { return molecule.SaveFile(path, m) }

// MergeMolecules concatenates molecules (receptor + ligand complexes).
func MergeMolecules(name string, ms ...*Molecule) *Molecule {
	return molecule.Merge(name, ms...)
}
