GO ?= go

.PHONY: check build test vet race faults bench-warm

## check: the tier-1 gate — vet, build, full test suite, race detector,
## and the fault-injection matrix.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(MAKE) race
	$(MAKE) faults

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## race: the concurrency-heavy packages under the race detector.
race:
	$(GO) test -race ./internal/core/ ./internal/sched/ ./internal/cluster/

## faults: the fault matrix — {crash, drop, delay} x {Born, E_pol,
## collective boundary} — plus the full injection/recovery suite.
faults:
	$(GO) test -run 'TestFaultMatrix|TestCrashAtEveryPhaseBoundary|TestChaosDeterministic' ./internal/core/
	$(GO) test -run 'TestCrash|TestDrop|TestDelay|TestRecv|TestSend|TestBcastAndReduceDeadRoot|TestTypedSentinels|TestCollective' ./internal/cluster/

## bench-warm: the warm-engine pose-scan pair (EXPERIMENTS.md extD).
bench-warm:
	$(GO) test -run '^$$' -bench 'BenchmarkComputeWarm' -benchtime 3x -count 2 .
