GO ?= go

# GOAMD64 microarchitecture level for benchmark builds (bench-lanes).
# The hot near-block kernels carry their own runtime-dispatched AVX2+FMA
# assembly, so this only affects compiler-generated code; v3 (AVX2 ISA
# baseline) shaves a few percent off the scalar exact tier on modern
# hosts. Usage: make bench-lanes GOAMD64=v3
GOAMD64 ?=

.PHONY: check build test vet race faults bench-warm bench-lanes bench-far obs perfgate net

## check: the tier-1 gate — vet, build, full test suite, race detector,
## the fault-injection matrix, the observability suite, and the perf
## regression gate.
check:
	$(MAKE) vet
	$(GO) build ./...
	$(GO) test ./...
	$(MAKE) race
	$(MAKE) faults
	$(MAKE) obs
	$(MAKE) net
	$(MAKE) perfgate

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## race: the concurrency-heavy packages under the race detector.
race:
	$(GO) test -race ./internal/core/ ./internal/sched/ ./internal/cluster/ ./internal/octree/

## faults: the fault matrix — {crash, drop, delay} x {Born, E_pol,
## collective boundary} — plus the full injection/recovery suite.
faults:
	$(GO) test -run 'TestFaultMatrix|TestCrashAtEveryPhaseBoundary|TestChaosDeterministic' ./internal/core/
	$(GO) test -run 'TestCrash|TestDrop|TestDelay|TestRecv|TestSend|TestBcastAndReduceDeadRoot|TestTypedSentinels|TestCollective' ./internal/cluster/

## obs: the observability layer — registry + telemetry codec + flight
## recorder + health sampler + /events stream + anomaly watchdog under
## -race, the gbtrace CLI (report/diff hardening, top view), span
## nesting/ordering, timeline acceptance runs (including the merged
## 4-process net trace, the endpoint wired through NetOptions, and the
## watchdog straggler-localization run), zero-alloc kernels, and the
## <2% disabled-path overhead guard (DESIGN.md §8, §13, §14).
obs:
	$(GO) test -race ./internal/obs/... ./cmd/gbtrace/
	$(GO) test -run 'TestSharedRunTrace|TestResilientTraceTimeline|TestKernelHotLoopZeroAllocs|TestDisabledObsOverhead|TestNetTelemetryMergedTrace|TestNetObsEndpoint' -v ./internal/core/
	$(GO) test -race -run 'TestNetWatchdogAcceptance' -v ./internal/core/

## net: the real multi-process transport under the race detector — wire
## protocol, death/heal/rejoin, sentinel parity across transports, and
## the acceptance runs (5k-atom TCP parity, SIGKILL chaos with real
## worker processes, coordinator restart from checkpoint, cancellation).
net:
	$(GO) test -race -count=1 ./internal/cluster/net/
	$(GO) test -race -count=1 -run 'TestNet|TestRunContext|TestElasticSpans' ./internal/core/ ./internal/cluster/

## perfgate: the performance regression gate (DESIGN.md §9). Compares
## the gate workload against results/baseline.json and fails on any
## stat regressing beyond its noise-aware tolerance; seeds the baseline
## on first run. Re-seed after an intentional perf change with:
##   go run ./cmd/gbbench -baseline results/baseline.json
perfgate:
	@if [ -f results/baseline.json ]; then \
		$(GO) run ./cmd/gbbench -compare results/baseline.json; \
	else \
		$(GO) run ./cmd/gbbench -baseline results/baseline.json; \
	fi

## bench-warm: the warm-engine pose-scan pair (EXPERIMENTS.md extD).
bench-warm:
	$(GO) test -run '^$$' -bench 'BenchmarkComputeWarm' -benchtime 3x -count 2 .

## bench-lanes: the kernel ablation — scalar vs laned x exact vs approx
## vs f32 precision tiers on the 40k-atom warm pose scan (EXPERIMENTS.md
## kernel ablation section). Honors GOAMD64 (see above).
bench-lanes:
	GOAMD64=$(GOAMD64) $(GO) run ./cmd/gbbench -exp lanes -reps 3

## bench-far: the far-order accuracy/cost frontier — E_pol error vs
## compiled far-list size vs warm pose time across eps x FarOrder
## (EXPERIMENTS.md far-order section), plus the per-order warm pose
## microbenchmarks.
bench-far:
	$(GO) run ./cmd/gbbench -exp pareto -reps 3
	$(GO) test -run '^$$' -bench 'BenchmarkWarmPoseFarOrder' -benchtime 3x -count 2 ./internal/core/

## bench-cold: the cold-path pair — octree construction benchmarks
## (recursive vs Morton at 1k/10k/100k points) and the coldstart
## experiment tables (EXPERIMENTS.md cold-start section).
bench-cold:
	$(GO) test -run '^$$' -bench 'BenchmarkBuild' -benchtime 3x -count 2 ./internal/octree/
	$(GO) run ./cmd/gbbench -exp coldstart
