GO ?= go

.PHONY: check build test vet race bench-warm

## check: the tier-1 gate — vet, build, full test suite.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## race: the concurrency-heavy packages under the race detector.
race:
	$(GO) test -race ./internal/core/ ./internal/sched/ ./internal/cluster/

## bench-warm: the warm-engine pose-scan pair (EXPERIMENTS.md extD).
bench-warm:
	$(GO) test -run '^$$' -bench 'BenchmarkComputeWarm' -benchtime 3x -count 2 .
