module gbpolar

go 1.22
