package gbpolar

import (
	"math"
	"path/filepath"
	"testing"

	"gbpolar/internal/geom"
)

func TestQuickstartFlow(t *testing.T) {
	mol := GenerateProtein("quick", 400, 1)
	eng, err := NewEngine(mol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Compute()
	if err != nil {
		t.Fatal(err)
	}
	if res.Epol >= 0 {
		t.Errorf("E_pol = %v, want negative", res.Epol)
	}
	if len(res.BornRadii) != mol.NumAtoms() {
		t.Errorf("%d radii for %d atoms", len(res.BornRadii), mol.NumAtoms())
	}
	naiveE, _ := eng.ComputeNaive()
	if rel := math.Abs((res.Epol - naiveE) / naiveE); rel > 0.05 {
		t.Errorf("error vs naive %.2f%%", 100*rel)
	}
}

func TestEngineRejectsBadInput(t *testing.T) {
	if _, err := NewEngine(nil, Options{}); err == nil {
		t.Error("nil molecule accepted")
	}
	if _, err := NewEngine(&Molecule{}, Options{}); err == nil {
		t.Error("empty molecule accepted")
	}
	bad := GenerateProtein("bad", 10, 2)
	bad.Atoms[0].Radius = -1
	if _, err := NewEngine(bad, Options{}); err == nil {
		t.Error("invalid molecule accepted")
	}
}

func TestComputeDistributedFacade(t *testing.T) {
	mol := GenerateProtein("dist", 300, 3)
	eng, err := NewEngine(mol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := eng.ComputeShared(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.ComputeDistributed(Cluster{Procs: 4, ThreadsPerProc: 1, Modeled: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((res.Epol-shared.Epol)/shared.Epol) > 1e-9 {
		t.Errorf("distributed %v vs shared %v", res.Epol, shared.Epol)
	}
	if res.Report == nil {
		t.Error("no cluster report")
	}
	if _, err := eng.ComputeDistributed(Cluster{}); err == nil {
		t.Error("zero procs accepted")
	}
}

func TestReposeInvariance(t *testing.T) {
	// Rigidly re-posing the whole system must not change the energy —
	// and must not require rebuilding the engine.
	mol := GenerateProtein("pose", 250, 4)
	eng, err := NewEngine(mol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before, err := eng.ComputeShared(2)
	if err != nil {
		t.Fatal(err)
	}
	eng.Repose(geom.Translate(geom.V(30, -12, 5)).Compose(geom.RotateAxis(geom.V(1, 1, 1), 1.0)))
	after, err := eng.ComputeShared(2)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs((after.Epol - before.Epol) / before.Epol); rel > 1e-9 {
		t.Errorf("energy changed by %.3g under rigid motion: %v -> %v", rel, before.Epol, after.Epol)
	}
}

func TestOptionsPlumbed(t *testing.T) {
	mol := GenerateProtein("opts", 300, 5)
	loose, err := NewEngine(mol, Options{EpsEpol: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := NewEngine(mol, Options{EpsEpol: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	rl, err := loose.Compute()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := tight.Compute()
	if err != nil {
		t.Fatal(err)
	}
	if rt.Ops <= rl.Ops {
		t.Errorf("tight eps ops %v not above loose eps ops %v", rt.Ops, rl.Ops)
	}
	naive, _ := loose.ComputeNaive()
	if math.Abs((rt.Epol-naive)/naive) > math.Abs((rl.Epol-naive)/naive)+0.01 {
		t.Error("tighter eps did not improve (or hold) accuracy")
	}
}

func TestFileRoundTripViaFacade(t *testing.T) {
	dir := t.TempDir()
	mol := GenerateLigand("lig", 30, 6)
	path := filepath.Join(dir, "lig.pqr")
	if err := SaveMolecule(path, mol); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMolecule(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumAtoms() != 30 {
		t.Errorf("loaded %d atoms", got.NumAtoms())
	}
}

func TestMergeAndCapsid(t *testing.T) {
	rec := GenerateProtein("rec", 200, 7)
	lig := GenerateLigand("lig", 25, 8)
	cplx := MergeMolecules("cplx", rec, lig)
	if cplx.NumAtoms() != 225 {
		t.Errorf("complex has %d atoms", cplx.NumAtoms())
	}
	cap := GenerateCapsid("cap", 1000, 25, 32, 9)
	if cap.NumAtoms() != 1000 {
		t.Errorf("capsid has %d atoms", cap.NumAtoms())
	}
	eng, err := NewEngine(cap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.ComputeShared(2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epol >= 0 {
		t.Error("capsid energy not negative")
	}
}

func TestNumQuadraturePointsScalesWithAtoms(t *testing.T) {
	small, err := NewEngine(GenerateProtein("s", 100, 10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewEngine(GenerateProtein("b", 8000, 11), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if big.NumQuadraturePoints() <= small.NumQuadraturePoints() {
		t.Error("q-point count did not grow with molecule size")
	}
}

func TestComputeGradientFacade(t *testing.T) {
	mol := GenerateProtein("gradf", 120, 12)
	eng, err := NewEngine(mol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := eng.ComputeGradient()
	if len(g.Grad) != mol.NumAtoms() {
		t.Fatalf("%d gradients for %d atoms", len(g.Grad), mol.NumAtoms())
	}
	naive, _ := eng.ComputeNaive()
	if math.Abs((g.Epol-naive)/naive) > 1e-9 {
		t.Errorf("gradient energy %v != naive %v", g.Epol, naive)
	}
}

func TestComputeDistributedDynamicFacade(t *testing.T) {
	mol := GenerateProtein("dynf", 300, 13)
	eng, err := NewEngine(mol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	static, err := eng.ComputeDistributed(Cluster{Procs: 3, Modeled: true})
	if err != nil {
		t.Fatal(err)
	}
	dyn, stats, err := eng.ComputeDistributedDynamic(Cluster{Procs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if stats == nil {
		t.Fatal("no stats")
	}
	if math.Abs((dyn.Epol-static.Epol)/static.Epol) > 1e-9 {
		t.Errorf("dynamic %v vs static %v", dyn.Epol, static.Epol)
	}
	if _, _, err := eng.ComputeDistributedDynamic(Cluster{}); err == nil {
		t.Error("zero procs accepted")
	}
}
