// Epsilon sweep — the speed/accuracy trade-off of the paper's Figure 10:
// Born ε fixed at 0.9, E_pol ε swept from 0.1 to 0.9. Error grows and
// work shrinks with ε; unlike cutoff-based packages, the memory use is
// identical at every ε (the paper's "space-independent speed-accuracy
// tradeoff").
//
//	go run ./examples/epsilonsweep
package main

import (
	"fmt"
	"log"

	"gbpolar"
)

func main() {
	log.SetFlags(0)

	mol := gbpolar.GenerateProtein("sweep", 4000, 3)
	fmt.Printf("molecule: %d atoms\n", mol.NumAtoms())

	// The naive reference is computed once: it does not depend on ε.
	ref, err := gbpolar.NewEngine(mol, gbpolar.Options{})
	if err != nil {
		log.Fatal(err)
	}
	naive, _ := ref.ComputeNaive()
	fmt.Printf("naive E_pol = %.4f kcal/mol\n\n", naive)

	fmt.Printf("%8s %16s %12s %14s\n", "epsEpol", "E_pol (kcal/mol)", "error (%)", "kernel ops")
	for _, eps := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		eng, err := gbpolar.NewEngine(mol, gbpolar.Options{EpsBorn: 0.9, EpsEpol: eps})
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Compute()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.1f %16.4f %12.4f %14.3g\n",
			eps, res.Epol, 100*(res.Epol-naive)/naive, res.Ops)
	}
}
