// Docking pose scan — the drug-design workload that motivates the paper
// (Section I): score a ligand at many rigid poses around a receptor.
// The receptor's engine is built once; each pose only re-poses the
// ligand and evaluates the complex energy, exploiting the paper's
// observation that octrees can be rigidly transformed without rebuild
// (Section IV.C, Step 1).
//
//	go run ./examples/docking
package main

import (
	"cmp"
	"fmt"
	"log"
	"math"
	"slices"
	"time"

	"gbpolar"
	"gbpolar/internal/geom"
)

const poses = 24

func main() {
	log.SetFlags(0)

	receptor := gbpolar.GenerateProtein("receptor", 2500, 7)
	ligand := gbpolar.GenerateLigand("ligand", 40, 8)

	// Receptor-only energy, to report the binding contribution ΔE_pol =
	// E(complex) − E(receptor) − E(ligand).
	recEng, err := gbpolar.NewEngine(receptor, gbpolar.Options{})
	if err != nil {
		log.Fatal(err)
	}
	recRes, err := recEng.Compute()
	if err != nil {
		log.Fatal(err)
	}
	ligEng, err := gbpolar.NewEngine(ligand, gbpolar.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ligRes, err := ligEng.Compute()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("receptor E_pol = %.2f kcal/mol, ligand E_pol = %.2f kcal/mol\n",
		recRes.Epol, ligRes.Epol)

	// Scan poses on a ring just outside the receptor surface.
	surfaceR := 0.0
	for _, a := range receptor.Atoms {
		if r := a.Pos.Norm() + a.Radius; r > surfaceR {
			surfaceR = r
		}
	}
	type scored struct {
		pose int
		dE   float64
	}
	var results []scored
	start := time.Now()
	for i := 0; i < poses; i++ {
		angle := 2 * math.Pi * float64(i) / poses
		pose := geom.Translate(geom.V(
			(surfaceR+3)*math.Cos(angle),
			(surfaceR+3)*math.Sin(angle),
			0,
		)).Compose(geom.RotateAxis(geom.V(0, 0, 1), angle))

		posed := ligand.Clone()
		posed.ApplyTransform(pose)
		complexMol := gbpolar.MergeMolecules("complex", receptor, posed)

		eng, err := gbpolar.NewEngine(complexMol, gbpolar.Options{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Compute()
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, scored{i, res.Epol - recRes.Epol - ligRes.Epol})
	}
	fmt.Printf("scored %d poses in %v\n", poses, time.Since(start).Round(time.Millisecond))

	slices.SortFunc(results, func(a, b scored) int { return cmp.Compare(a.dE, b.dE) })
	fmt.Println("best 5 poses by polarization contribution to binding:")
	for _, r := range results[:5] {
		fmt.Printf("  pose %2d: ΔE_pol = %+8.3f kcal/mol\n", r.pose, r.dE)
	}

	// Warm-engine rescan (DESIGN.md §6). The first Compute on an engine
	// records each traversal's near/far decomposition as interaction
	// lists; Repose moves the whole system rigidly, which preserves the
	// decomposition, so every later Compute replays the recorded lists
	// with batched kernels instead of re-traversing from the octree
	// roots. For a pose scan, keep ONE engine alive and Repose it —
	// don't rebuild an engine per pose.
	best := results[0]
	angle := 2 * math.Pi * float64(best.pose) / poses
	posed := ligand.Clone()
	posed.ApplyTransform(geom.Translate(geom.V(
		(surfaceR+3)*math.Cos(angle),
		(surfaceR+3)*math.Sin(angle),
		0,
	)).Compose(geom.RotateAxis(geom.V(0, 0, 1), angle)))
	complexMol := gbpolar.MergeMolecules("complex", receptor, posed)
	eng, err := gbpolar.NewEngine(complexMol, gbpolar.Options{})
	if err != nil {
		log.Fatal(err)
	}
	cold := time.Now()
	if _, err := eng.Compute(); err != nil { // compiles the lists
		log.Fatal(err)
	}
	coldT := time.Since(cold)
	step := geom.RotateAxis(geom.V(0, 1, 0), 2*math.Pi/16)
	warm := time.Now()
	for i := 0; i < 16; i++ {
		eng.Repose(step) // rigid: lists stay valid
		if _, err := eng.Compute(); err != nil {
			log.Fatal(err)
		}
	}
	warmT := time.Since(warm) / 16
	fmt.Printf("best complex: cold evaluation %v, warm evaluations %v/pose\n",
		coldT.Round(time.Millisecond), warmT.Round(time.Millisecond))
}
