// Quickstart: generate a protein-like molecule, compute its GB
// polarization energy with the octree algorithm, and compare against the
// exact quadratic reference.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"gbpolar"
)

func main() {
	log.SetFlags(0)

	// A 3,000-atom synthetic protein (deterministic for the seed).
	mol := gbpolar.GenerateProtein("quickstart", 3000, 42)
	fmt.Printf("molecule: %d atoms, net charge %+.2f e\n", mol.NumAtoms(), mol.TotalCharge())

	// Build the engine: samples the molecular surface and builds the two
	// octrees. This is the one-time preprocessing step.
	eng, err := gbpolar.NewEngine(mol, gbpolar.Options{
		EpsBorn: 0.9, // the paper's headline approximation parameters
		EpsEpol: 0.9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("surface: %d quadrature points\n", eng.NumQuadraturePoints())

	// Octree-approximated energy on all cores (OCT_CILK).
	start := time.Now()
	res, err := eng.Compute()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("octree E_pol = %.4f kcal/mol   (%.3gs, %.3g kernel ops)\n",
		res.Epol, time.Since(start).Seconds(), res.Ops)

	// Exact reference (Θ(M·N + M²)) for the error.
	start = time.Now()
	naive, _ := eng.ComputeNaive()
	fmt.Printf("naive  E_pol = %.4f kcal/mol   (%.3gs)\n", naive, time.Since(start).Seconds())
	fmt.Printf("error: %.4f%%\n", 100*(res.Epol-naive)/naive)
}
