// Polarization forces — the gradient extension toward the paper's
// future-work MD integration (Section VI). Computes the rigid-cavity
// force profile on a ligand approaching a receptor: the desolvation
// barrier every docking code must model.
//
//	go run ./examples/forces
package main

import (
	"fmt"
	"log"

	"gbpolar"
	"gbpolar/internal/geom"
)

func main() {
	log.SetFlags(0)

	receptor := gbpolar.GenerateProtein("receptor", 1200, 11)
	ligand := gbpolar.GenerateLigand("ligand", 30, 12)

	// Receptor extent along +x.
	maxX := 0.0
	for _, a := range receptor.Atoms {
		if x := a.Pos.X + a.Radius; x > maxX {
			maxX = x
		}
	}

	fmt.Printf("%12s %18s %22s\n", "distance (Å)", "E_pol (kcal/mol)", "force on ligand (x)")
	for _, gap := range []float64{12, 8, 6, 4, 3, 2} {
		posed := ligand.Clone()
		posed.ApplyTransform(geom.Translate(geom.V(maxX+gap, 0, 0)))
		cplx := gbpolar.MergeMolecules("complex", receptor, posed)

		eng, err := gbpolar.NewEngine(cplx, gbpolar.Options{})
		if err != nil {
			log.Fatal(err)
		}
		grad := eng.ComputeGradient()

		// Net polarization force on the ligand atoms (negative gradient),
		// projected on the approach axis.
		var fx float64
		nRec := receptor.NumAtoms()
		for i := nRec; i < cplx.NumAtoms(); i++ {
			fx -= grad.Grad[i].X
		}
		fmt.Printf("%12.1f %18.3f %22.4f\n", gap, grad.Epol, fx)
	}
	fmt.Println("\n(negative force = solvent polarization resists burial of the")
	fmt.Println(" charged ligand — the desolvation penalty of binding)")
}
