// MD-step loop — exercises the dynamic-octree update path (the paper's
// reference [8] machinery and its Section II "update-efficient" claim):
// atoms jiggle every step, the atoms octree is repaired incrementally
// instead of rebuilt, and the polarization energy is re-evaluated.
//
//	go run ./examples/mdstep
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"gbpolar/internal/core"
	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
	"gbpolar/internal/surface"
)

const (
	atoms = 4000
	steps = 10
	sigma = 0.08 // Å per step, a typical MD displacement
)

func main() {
	log.SetFlags(0)

	mol := molecule.GenProtein("mdstep", atoms, 21)
	surf, err := surface.ForMolecule(mol, surface.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(mol, surf, core.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("molecule: %d atoms, %d q-points, octree %d nodes\n\n",
		atoms, surf.NumPoints(), sys.Atoms.NumNodes())

	rng := rand.New(rand.NewSource(22))
	pos := mol.Positions()

	fmt.Printf("%6s %12s %16s %12s %14s\n", "step", "moved atoms", "E_pol (kcal/mol)", "update (ms)", "energy (ms)")
	var updTotal, rebuildEquiv time.Duration
	for step := 1; step <= steps; step++ {
		for i := range pos {
			pos[i] = pos[i].Add(geom.V(
				rng.NormFloat64()*sigma, rng.NormFloat64()*sigma, rng.NormFloat64()*sigma))
		}
		t0 := time.Now()
		moved, err := sys.UpdateAtoms(pos)
		if err != nil {
			log.Fatal(err)
		}
		updDur := time.Since(t0)
		updTotal += updDur

		t0 = time.Now()
		res, err := core.RunShared(sys, core.SharedOptions{Threads: 0})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %12d %16.2f %12.2f %14.2f\n",
			step, moved, res.Epol,
			float64(updDur.Microseconds())/1000,
			float64(time.Since(t0).Microseconds())/1000)
	}

	// Compare against rebuilding the octree from scratch every step.
	t0 := time.Now()
	for i := 0; i < steps; i++ {
		if _, err := core.NewSystem(mol, surf, core.DefaultParams()); err != nil {
			log.Fatal(err)
		}
	}
	rebuildEquiv = time.Since(t0)
	fmt.Printf("\nincremental updates: %v total; rebuild-from-scratch equivalent: %v (%.1fx)\n",
		updTotal.Round(time.Millisecond), rebuildEquiv.Round(time.Millisecond),
		float64(rebuildEquiv)/float64(updTotal))
}
