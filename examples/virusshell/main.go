// Virus-shell scaling — the paper's Section V.F workload: the Cucumber
// Mosaic Virus capsid (509,640 atoms at full scale; reduced here by
// default) computed with the hybrid distributed-shared algorithm,
// compared against pure MPI and against an Amber-like all-pairs
// baseline, including the memory-replication comparison of Section V.B.
//
//	go run ./examples/virusshell            # ~10k-atom analogue
//	go run ./examples/virusshell -scale 0.2 # ~100k atoms (minutes)
package main

import (
	"flag"
	"fmt"
	"log"

	"gbpolar"
	"gbpolar/internal/baselines"
	"gbpolar/internal/molecule"
)

func main() {
	log.SetFlags(0)
	scale := flag.Float64("scale", 0.02, "fraction of the paper's 509,640-atom CMV shell")
	flag.Parse()

	mol := molecule.CMVAnalogue(*scale, 1)
	fmt.Printf("molecule: %s (%d atoms)\n", mol.Name, mol.NumAtoms())

	eng, err := gbpolar.NewEngine(mol, gbpolar.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("surface: %d quadrature points\n\n", eng.NumQuadraturePoints())

	// OCT_MPI: 12 single-threaded ranks on one modeled node.
	pure, err := eng.ComputeDistributed(gbpolar.Cluster{
		Procs: 12, ThreadsPerProc: 1, RanksPerNode: 12, Modeled: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	// OCT_MPI+CILK: 2 ranks × 6 threads (one rank per socket).
	hybrid, err := eng.ComputeDistributed(gbpolar.Cluster{
		Procs: 2, ThreadsPerProc: 6, RanksPerNode: 2, Modeled: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Amber-like all-pairs baseline on the same 12 cores.
	amber, err := baselines.Amber.Run(mol, baselines.Options{Cores: 12})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %12s %16s %14s\n", "program", "time (s)", "E_pol (kcal/mol)", "node mem (MB)")
	row := func(name string, secs, e float64, memBytes int64) {
		fmt.Printf("%-22s %12.4g %16.6g %14.1f\n", name, secs, e, float64(memBytes)/(1<<20))
	}
	row("OCT_MPI (12x1)", pure.ModelSeconds, pure.Epol, pure.Report.MaxNodeMemoryBytes)
	row("OCT_MPI+CILK (2x6)", hybrid.ModelSeconds, hybrid.Epol, hybrid.Report.MaxNodeMemoryBytes)
	row("Amber-like (12x1)", amber.ModelSeconds, amber.Epol, amber.Report.MaxNodeMemoryBytes)

	fmt.Printf("\nhybrid speedup vs Amber-like: %.1fx\n", amber.ModelSeconds/hybrid.ModelSeconds)
	fmt.Printf("pure-MPI memory / hybrid memory: %.2fx (paper: 5.86x)\n",
		float64(pure.Report.MaxNodeMemoryBytes)/float64(hybrid.Report.MaxNodeMemoryBytes))
}
