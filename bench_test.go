// Benchmarks: one per table/figure of the paper's evaluation (regenerate
// with `go test -bench=Fig -benchmem`, or at larger scale via
// cmd/gbbench), plus ablation benchmarks for the design choices DESIGN.md
// calls out — MAC criterion, approximate math, work-division scheme,
// octree-vs-nblist substrate and the work-stealing scheduler.
package gbpolar

import (
	"runtime"
	"testing"

	"gbpolar/internal/bench"
	"gbpolar/internal/cluster"
	"gbpolar/internal/core"
	"gbpolar/internal/geom"
	"gbpolar/internal/mathx"
	"gbpolar/internal/molecule"
	"gbpolar/internal/nblist"
	"gbpolar/internal/octree"
	"gbpolar/internal/sched"
	"gbpolar/internal/surface"
)

// benchCfg is the reduced-scale configuration for in-test regeneration.
func benchCfg() bench.Config {
	return bench.Config{Seed: 2, Scale: 0.004, SuiteStride: 28, Repetitions: 2}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableI(b *testing.B)  { runExperiment(b, "tableI") }
func BenchmarkTableII(b *testing.B) { runExperiment(b, "tableII") }
func BenchmarkFig5(b *testing.B)    { runExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)    { runExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)    { runExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)    { runExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)    { runExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)   { runExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)   { runExperiment(b, "fig11") }

// --- Ablation benchmarks ---------------------------------------------

func benchSystem(b *testing.B, n int, params core.Params) *core.System {
	b.Helper()
	mol := molecule.GenProtein("bench", n, 3)
	surf, err := surface.ForMolecule(mol, surface.Options{})
	if err != nil {
		b.Fatal(err)
	}
	sys, err := core.NewSystem(mol, surf, params)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// Loose (paper-behaviour) vs strict (worst-case-bound) Born MAC.
func BenchmarkAblationBornMACLoose(b *testing.B) {
	sys := benchSystem(b, 4000, core.DefaultParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunShared(sys, core.SharedOptions{Threads: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBornMACStrict(b *testing.B) {
	p := core.DefaultParams()
	p.StrictBornMAC = true
	sys := benchSystem(b, 4000, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunShared(sys, core.SharedOptions{Threads: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// Approximate math ON vs OFF (the paper's ≈1.42× claim).
func BenchmarkAblationExactMath(b *testing.B) {
	sys := benchSystem(b, 4000, core.DefaultParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunShared(sys, core.SharedOptions{Threads: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationApproxMath(b *testing.B) {
	p := core.DefaultParams()
	p.Math = mathx.Approximate
	sys := benchSystem(b, 4000, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunShared(sys, core.SharedOptions{Threads: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// Work-division schemes (node-node vs atom-node vs atom-atom).
func benchScheme(b *testing.B, scheme core.Scheme) {
	b.Helper()
	sys := benchSystem(b, 3000, core.DefaultParams())
	cfg := cluster.Config{Procs: 4, ThreadsPerProc: 1, RanksPerNode: 4, Topology: cluster.Lonestar4(1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunDistributedScheme(sys, cfg, scheme); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSchemeNodeNode(b *testing.B) { benchScheme(b, core.NodeNode) }
func BenchmarkAblationSchemeAtomNode(b *testing.B) { benchScheme(b, core.AtomNode) }
func BenchmarkAblationSchemeAtomAtom(b *testing.B) { benchScheme(b, core.AtomAtom) }

// Octree vs nblist substrate: construction cost and memory for growing
// cutoffs (the paper's Section II space argument).
func BenchmarkAblationOctreeBuild(b *testing.B) {
	mol := molecule.GenProtein("sub", 20000, 4)
	pts := mol.Positions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := octree.Build(pts, octree.Options{LeafCap: 8})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(t.MemoryBytes()), "bytes")
	}
}

func BenchmarkAblationNblistBuildCutoff8(b *testing.B)  { benchNblist(b, 8) }
func BenchmarkAblationNblistBuildCutoff16(b *testing.B) { benchNblist(b, 16) }
func BenchmarkAblationNblistBuildCutoff32(b *testing.B) { benchNblist(b, 32) }

func benchNblist(b *testing.B, cutoff float64) {
	b.Helper()
	mol := molecule.GenProtein("sub", 20000, 4)
	pts := mol.Positions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := nblist.Build(pts, cutoff, nblist.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(l.MemoryBytes()), "bytes")
	}
}

// Work stealing vs no parallelism at all (scheduler overhead check).
func BenchmarkAblationSchedWorkStealing(b *testing.B) {
	sys := benchSystem(b, 3000, core.DefaultParams())
	pool := sched.NewPool(4)
	defer pool.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunShared(sys, core.SharedOptions{Pool: pool}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSchedSerial(b *testing.B) {
	sys := benchSystem(b, 3000, core.DefaultParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunShared(sys, core.SharedOptions{Threads: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// Single-tree (this paper) vs dual-tree ([6]) Born-radius traversal.
func BenchmarkAblationBornSingleTree(b *testing.B) {
	sys := benchSystem(b, 6000, core.DefaultParams())
	pool := sched.NewPool(4)
	defer pool.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunShared(sys, core.SharedOptions{Pool: pool}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBornDualTree(b *testing.B) {
	sys := benchSystem(b, 6000, core.DefaultParams())
	pool := sched.NewPool(4)
	defer pool.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ops := core.DualTreeBornRadii(sys, pool)
		b.ReportMetric(ops, "kernel-ops")
	}
}

// Warm-engine repeated evaluation — the docking pose-scan workload. The
// compiled variant reuses the interaction lists built on the first call
// (rigid motion preserves the near/far classification); the recursive
// variant re-runs the reference traversal from the root every pose. The
// pool is sized to the machine: oversubscribing workers on a small host
// adds scheduler churn to both variants and drowns the signal.
// EXPERIMENTS.md records the measured gap.
func benchComputeWarm(b *testing.B, recursive bool) {
	b.Helper()
	sys := benchSystem(b, 40000, core.DefaultParams())
	pool := sched.NewPool(runtime.GOMAXPROCS(0))
	defer pool.Close()
	opts := core.SharedOptions{Pool: pool, Recursive: recursive}
	if _, err := core.RunShared(sys, opts); err != nil { // warm-up: compile lists
		b.Fatal(err)
	}
	step := geom.Translate(geom.V(1.5, -0.7, 0.9)).Compose(geom.RotateAxis(geom.V(0, 0, 1), 0.05))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.ApplyRigidTransform(step)
		res, err := core.RunShared(sys, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Ops, "kernel-ops")
	}
}

func BenchmarkComputeWarmCompiled(b *testing.B)  { benchComputeWarm(b, false) }
func BenchmarkComputeWarmRecursive(b *testing.B) { benchComputeWarm(b, true) }

// End-to-end engine benchmarks at growing sizes (scaling sanity).
func benchEngine(b *testing.B, atoms int) {
	b.Helper()
	mol := GenerateProtein("scalebench", atoms, 5)
	eng, err := NewEngine(mol, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Compute()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Ops, "kernel-ops")
	}
}

func BenchmarkEngine1k(b *testing.B)  { benchEngine(b, 1000) }
func BenchmarkEngine4k(b *testing.B)  { benchEngine(b, 4000) }
func BenchmarkEngine16k(b *testing.B) { benchEngine(b, 16000) }
