#!/bin/sh
# Regenerate only the named experiments and splice them into
# paper_replication.txt (used after changes that affect a subset of the
# figures; a full `gbbench -exp all` regeneration is equivalent).
set -e
cd "$(dirname "$0")/.."
for exp in "$@"; do
	go run ./cmd/gbbench -exp "$exp" >"results/.$exp.txt"
done
python3 - "$@" <<'EOF'
import re, sys
path = "results/paper_replication.txt"
text = open(path).read()
# Split into sections keyed by the table IDs they contain.
for exp in sys.argv[1:]:
    new = open(f"results/.{exp}.txt").read()
    ids = re.findall(r"^== ([\w-]+):", new, re.M)
    for i, tid in enumerate(ids):
        pat = re.compile(rf"^== {re.escape(tid)}:.*?(?=^== |\Z)", re.M | re.S)
        seg = re.compile(rf"^== {re.escape(tid)}:.*?(?=^== |\Z)", re.M | re.S).search(new).group(0)
        if pat.search(text):
            text = pat.sub(lambda m: seg, text, count=1)
        else:
            text += "\n" + seg
open(path, "w").write(text)
EOF
rm -f results/.*.txt
echo "spliced: $*"
